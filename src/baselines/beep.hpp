/// \file beep.hpp
/// \brief Anonymous bit-by-bit broadcast under collision detection.
///
/// Paper §1.1: "If collision detection is available, broadcast is trivially
/// feasible, even in anonymous networks: consecutive bits of the source
/// message can be transmitted by a sequence of silent and noisy rounds,
/// using silence as 0 and a message or collision as 1."
///
/// This protocol reproduces that remark.  Nodes are fully anonymous (no
/// labels, no ids, identical code); only *energy vs silence* is observable,
/// which requires the engine's collision-detection mode.  The message is sent
/// as frames of 1 start-beep plus L data beeps:
///
///   - the source emits its frame in rounds 1 .. L+1;
///   - every node at BFS distance d first senses energy in round
///     (d-1)(L+1)+1, decodes the following L rounds, then relays the whole
///     frame once.  All distance-d nodes relay in unison, so listeners at
///     distance d+1 see the OR of identical aligned frames — exactly the
///     frame itself.  No collision ever corrupts a bit.
///
/// Completion takes ecc(source) · (L+1) rounds — and it works on the
/// unlabeled four-cycle, which is impossible without collision detection
/// (experiment E7/E11).
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "sim/protocol.hpp"

namespace radiocast::baselines {

class BeepBroadcastProtocol final : public sim::Protocol {
 public:
  /// `bits`: frame width L (message length in bits, known network-wide).
  /// `source_message`: engaged iff this node is the source.
  BeepBroadcastProtocol(std::uint32_t bits,
                        std::optional<std::uint32_t> source_message);

  std::optional<sim::Message> on_round() override;
  void on_hear(const sim::Message& m) override;
  void on_collision() override;
  bool informed() const override { return decoded_.has_value(); }

  /// Activity contract: an idle node waits for its first sensed energy (the
  /// engine re-arms on deliveries *and* collisions, and every reception is
  /// folded in exactly one round later); decoding and relaying nodes treat
  /// every round as meaningful — under collision detection, silence is data
  /// — so they are woken every round until the frame is out; a finished
  /// node never acts again.
  std::uint64_t next_active_round() const override;
  void skip_rounds(std::uint64_t rounds) override { round_ += rounds; }

  /// Observer: the decoded message (engaged once informed).
  std::optional<std::uint32_t> decoded() const noexcept { return decoded_; }

 private:
  bool frame_bit(std::uint32_t value, std::uint32_t k) const;

  enum class State : std::uint8_t { kIdle, kDecoding, kRelaying, kDone };

  std::uint32_t bits_;
  State state_;
  std::optional<std::uint32_t> decoded_;
  std::uint64_t round_ = 0;
  std::uint64_t frame_start_ = 0;  ///< local round of the sensed start beep
  /// Relay frame = rounds anchor+1 .. anchor+bits+1.
  std::uint64_t relay_anchor_ = 0;
  std::uint32_t accum_ = 0;        ///< bits decoded so far (MSB first)
  std::uint32_t decoded_count_ = 0;
  bool energy_this_round_ = false;
};

/// Result of an anonymous beep broadcast.
struct BeepRun {
  bool ok = false;                 ///< everyone decoded exactly µ
  std::uint64_t completion_round = 0;
  std::uint32_t frame_bits = 0;
};

/// Runs the beep protocol (engine in collision-detection mode).
BeepRun run_beep(const graph::Graph& g, graph::NodeId source, std::uint32_t mu,
                 std::uint32_t bits);

}  // namespace radiocast::baselines
