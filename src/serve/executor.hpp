/// \file executor.hpp
/// \brief Staged batch pipeline: decode/run/encode overlap + admission.
///
/// The serial daemon ran every batch under one runner mutex, so concurrent
/// clients paid N × (fixed batch cost) and JSON encoding of batch k blocked
/// execution of batch k+1.  The executor splits the work into stages wired
/// by queues:
///
///   connection threads ──submit──▶ [admission queue] ──▶ run thread
///        (decode only)                                      │ run_merged
///                                                           ▼
///   connection sockets ◀──callbacks── encode thread ◀── [done queue]
///
/// The run thread drains whatever has accumulated in the admission queue
/// and submits it as ONE merged `SweepRunner::run_merged` call — batches
/// arriving while a sweep is in flight coalesce naturally, so two clients
/// sweeping the same graph share one labeling lookup and one pool dispatch.
/// An optional coalesce window adds a bounded wait for more batches before
/// submitting.  Completions flow through the encode queue in submission
/// order, so each connection's responses arrive in the order it sent its
/// batches, and encoding never blocks the next sweep.
///
/// Merged results are byte-identical to the serial path (same specs, same
/// plan dedup, spec-order execution — pinned by the serve differentials).
/// Error isolation: a contract violation inside a merged sweep triggers a
/// fallback split — each batch re-runs alone, so one client's bad graph ref
/// fails only that client's batch (counted in `stats().fallback_splits`).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sweep.hpp"

namespace radiocast::serve {

struct ExecutorOptions {
  /// Admission-queue capacity; submit() blocks (backpressure) when this
  /// many batches are already queued.  Must be >= 1.
  std::size_t pipeline_depth = 32;
  /// Extra time the run thread waits for more batches to coalesce after the
  /// first one arrives (0 = submit whatever has accumulated immediately;
  /// batches still coalesce naturally while a sweep is in flight).
  std::uint64_t coalesce_window_ms = 0;
};

/// Pipeline traffic counters (all monotonic except `queue_depth`).
struct PipelineStats {
  std::uint64_t batches = 0;      ///< batches submitted
  std::uint64_t specs = 0;        ///< specs submitted
  std::uint64_t submissions = 0;  ///< merged run_merged() calls
  /// Batches that shared a submission with at least one other batch, and
  /// the specs they carried — the cross-connection admission win.
  std::uint64_t coalesced_batches = 0;
  std::uint64_t merged_specs = 0;
  std::uint64_t fallback_splits = 0;  ///< merged runs re-run per batch
  std::uint64_t max_queue_depth = 0;  ///< admission-queue high-water mark
  std::uint64_t queue_depth = 0;      ///< batches queued right now
};

/// What a submitted batch resolves to: its results (in the batch's own spec
/// order) plus per-spec execution wall times, or an error.  `cache_stats`
/// snapshots the runner cache after the sweep that ran this batch (the done
/// frame's "stats" object).
struct Completion {
  std::vector<runtime::SchemeResult> results;
  std::vector<std::uint64_t> spec_wall_ns;
  runtime::PlanCacheStats cache_stats;
  std::string error;  ///< non-empty = the batch failed

  bool ok() const noexcept { return error.empty(); }
};

/// The staged pipeline.  Thread-safe: submit() from any number of
/// connection threads; completion callbacks are invoked from the single
/// encode thread, in submission order.
class Executor {
 public:
  using CompletionFn = std::function<void(Completion)>;

  /// The runner outlives the executor; the executor is the only caller of
  /// `run` / `run_merged` while started (SweepRunner is single-batch by
  /// contract).
  Executor(runtime::SweepRunner& runner, ExecutorOptions options);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Starts the run and encode threads.
  void start();

  /// Drains every queued batch (they run and complete normally), then joins
  /// both threads.  Idempotent.  Batches submitted after stop() complete
  /// immediately with an error.
  void stop();

  /// Enqueues a decoded batch; `done` fires from the encode thread once the
  /// batch has run.  Blocks while the admission queue is full
  /// (backpressure), keeping per-connection memory bounded.
  void submit(std::vector<runtime::ExperimentSpec> specs, CompletionFn done);

  PipelineStats stats() const;

 private:
  struct Job {
    std::vector<runtime::ExperimentSpec> specs;
    CompletionFn done;
  };
  struct Done {
    CompletionFn done;
    Completion completion;
  };

  void run_loop();
  void encode_loop();
  /// Runs one drained admission-queue snapshot as a merged sweep (with the
  /// per-batch fallback on failure) and forwards completions to the encode
  /// queue.
  void run_jobs(std::vector<Job> jobs);

  runtime::SweepRunner& runner_;
  ExecutorOptions options_;

  mutable std::mutex mu_;
  PipelineStats stats_;
  std::deque<Job> queue_;
  std::deque<Done> encode_queue_;
  bool started_ = false;
  bool stopping_ = false;
  bool run_finished_ = false;
  std::condition_variable jobs_cv_;    ///< run thread waits for work
  std::condition_variable space_cv_;   ///< submitters wait for queue space
  std::condition_variable encode_cv_;  ///< encode thread waits for results
  std::thread run_thread_;
  std::thread encode_thread_;
};

}  // namespace radiocast::serve
