#include "serve/executor.hpp"

#include <chrono>
#include <utility>

#include "support/contracts.hpp"

namespace radiocast::serve {

Executor::Executor(runtime::SweepRunner& runner, ExecutorOptions options)
    : runner_(runner), options_(options) {
  RC_EXPECTS_MSG(options_.pipeline_depth >= 1,
                 "executor pipeline depth must be >= 1");
}

Executor::~Executor() { stop(); }

void Executor::start() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    RC_EXPECTS_MSG(!started_, "executor already started");
    started_ = true;
    stopping_ = false;
    run_finished_ = false;
  }
  run_thread_ = std::thread([this] { run_loop(); });
  encode_thread_ = std::thread([this] { encode_loop(); });
}

void Executor::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
  }
  jobs_cv_.notify_all();
  space_cv_.notify_all();
  if (run_thread_.joinable()) run_thread_.join();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    run_finished_ = true;
  }
  encode_cv_.notify_all();
  if (encode_thread_.joinable()) encode_thread_.join();
  const std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Executor::submit(std::vector<runtime::ExperimentSpec> specs,
                      CompletionFn done) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [this] {
      return stopping_ || queue_.size() < options_.pipeline_depth;
    });
    if (!stopping_) {
      ++stats_.batches;
      stats_.specs += specs.size();
      queue_.push_back(Job{std::move(specs), std::move(done)});
      stats_.queue_depth = queue_.size();
      if (queue_.size() > stats_.max_queue_depth) {
        stats_.max_queue_depth = queue_.size();
      }
      jobs_cv_.notify_one();
      return;
    }
  }
  // Stopped: the run thread has drained and exited; fail the batch rather
  // than strand it.
  Completion completion;
  completion.error = "server is shutting down";
  done(std::move(completion));
}

PipelineStats Executor::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Executor::run_loop() {
  while (true) {
    std::vector<Job> jobs;
    {
      std::unique_lock<std::mutex> lock(mu_);
      jobs_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      if (options_.coalesce_window_ms > 0 && !stopping_) {
        // Bounded wait for more batches to merge into this submission.
        jobs_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.coalesce_window_ms),
            [this] {
              return stopping_ || queue_.size() >= options_.pipeline_depth;
            });
      }
      jobs.reserve(queue_.size());
      while (!queue_.empty()) {
        jobs.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.queue_depth = 0;
      ++stats_.submissions;
      if (jobs.size() > 1) {
        stats_.coalesced_batches += jobs.size();
        for (const Job& job : jobs) stats_.merged_specs += job.specs.size();
      }
    }
    space_cv_.notify_all();
    run_jobs(std::move(jobs));
  }
}

void Executor::run_jobs(std::vector<Job> jobs) {
  std::vector<Done> dones(jobs.size());
  bool merged_ok = true;
  try {
    std::vector<const std::vector<runtime::ExperimentSpec>*> batches;
    batches.reserve(jobs.size());
    for (const Job& job : jobs) batches.push_back(&job.specs);
    std::vector<runtime::BatchResults> sliced = runner_.run_merged(batches);
    const runtime::PlanCacheStats after = runner_.cache_stats();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      dones[i].completion.results = std::move(sliced[i].results);
      dones[i].completion.spec_wall_ns = std::move(sliced[i].spec_wall_ns);
      dones[i].completion.cache_stats = after;
    }
  } catch (const ContractViolation&) {
    merged_ok = false;
  }
  if (!merged_ok) {
    // One batch poisoned the merged sweep (unresolvable graph ref,
    // out-of-range source, ...).  Re-run each batch alone so only the
    // offending batches fail.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++stats_.fallback_splits;
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      try {
        std::vector<runtime::BatchResults> sliced =
            runner_.run_merged({&jobs[i].specs});
        dones[i].completion.results = std::move(sliced[0].results);
        dones[i].completion.spec_wall_ns = std::move(sliced[0].spec_wall_ns);
        dones[i].completion.cache_stats = runner_.cache_stats();
      } catch (const ContractViolation& violation) {
        dones[i].completion = Completion{};
        dones[i].completion.error = violation.what();
      }
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      dones[i].done = std::move(jobs[i].done);
      encode_queue_.push_back(std::move(dones[i]));
    }
  }
  encode_cv_.notify_one();
}

void Executor::encode_loop() {
  while (true) {
    Done done;
    {
      std::unique_lock<std::mutex> lock(mu_);
      encode_cv_.wait(lock, [this] {
        return run_finished_ || !encode_queue_.empty();
      });
      if (encode_queue_.empty()) return;  // run thread exited, fully drained
      done = std::move(encode_queue_.front());
      encode_queue_.pop_front();
    }
    done.done(std::move(done.completion));
  }
}

}  // namespace radiocast::serve
