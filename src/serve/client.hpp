/// \file client.hpp
/// \brief Blocking client for the radiocast_serve wire protocol.
///
/// Covers the three in-tree consumers — the serve tests, the
/// serve_throughput bench (many concurrent clients hammering one server),
/// and `radiocast_cli`-style tooling — with a deliberately small surface:
/// connect, exchange one request/response, or run a whole spec batch and
/// collect the in-order results.  The CI smoke driver speaks the same
/// protocol from Python (tools/serve_client.py); this class is the C++
/// reference implementation of that conversation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "runtime/sweep.hpp"
#include "runtime/wire.hpp"
#include "support/json.hpp"

namespace radiocast::serve {

/// Outcome of a batch round trip: results in spec order on success, the
/// server's (or transport's) error text otherwise.
struct BatchOutcome {
  bool ok = false;
  std::vector<runtime::SchemeResult> results;
  support::Json done;  ///< the final "done" frame (cache stats live here)
  std::string error;
  std::string code;  ///< machine-readable code on a server error frame
};

/// Outcome of a binary-encoded batch round trip ("encoding":"binary"):
/// the compact per-spec records in spec order.
struct BinaryBatchOutcome {
  bool ok = false;
  std::vector<runtime::wire::BinaryResult> records;
  support::Json done;
  std::string error;
  std::string code;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a Unix-domain / loopback-TCP server; false on failure
  /// (the client stays unconnected and reusable).
  bool connect_unix(const std::string& path);
  bool connect_tcp(std::uint16_t port);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends one framed JSON request; false on a broken connection.
  bool send(const support::Json& request);
  /// Blocks for the next frame; nullopt on EOF or a framing error.
  std::optional<support::Json> receive();
  /// Blocks for the next frame's raw payload without JSON-parsing it (the
  /// binary results frame that follows a "results" announce).
  std::optional<std::string> receive_raw();

  /// Sends a batch and collects the streamed results through "done".
  BatchOutcome run_batch(const std::vector<runtime::ExperimentSpec>& specs,
                         std::uint64_t id = 0);

  /// Sends a batch with "encoding":"binary" and decodes the raw
  /// radiocast-resbin/1 frame the server answers with.
  BinaryBatchOutcome run_batch_binary(
      const std::vector<runtime::ExperimentSpec>& specs,
      std::uint64_t id = 0);

  /// Round-trips a ping; false if the server did not answer pong.
  bool ping();

  /// Requests server shutdown; true if "bye" came back.
  bool shutdown_server();

 private:
  int fd_ = -1;
  runtime::wire::FrameReader frames_;
};

}  // namespace radiocast::serve
