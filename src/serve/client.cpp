#include "serve/client.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace radiocast::serve {

namespace {

using support::Json;

bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      frames_(std::move(other.frames_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    frames_ = std::move(other.frames_);
  }
  return *this;
}

bool Client::connect_unix(const std::string& path) {
  close();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool Client::connect_tcp(std::uint16_t port) {
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  // See Server::accept_loop: framed request/response traffic must not sit
  // in Nagle's buffer waiting for a delayed ACK.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  frames_ = runtime::wire::FrameReader();
}

bool Client::send(const Json& request) {
  if (fd_ < 0) return false;
  return write_all(fd_, runtime::wire::frame(request.dump()));
}

std::optional<Json> Client::receive() {
  const auto payload = receive_raw();
  if (!payload) return std::nullopt;
  const auto parsed = support::parse_json(*payload);
  if (!parsed.ok) return std::nullopt;
  return parsed.value;
}

std::optional<std::string> Client::receive_raw() {
  if (fd_ < 0) return std::nullopt;
  char buf[64 * 1024];
  while (true) {
    if (auto payload = frames_.next()) return payload;
    if (frames_.bad()) return std::nullopt;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    frames_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

BatchOutcome Client::run_batch(
    const std::vector<runtime::ExperimentSpec>& specs, std::uint64_t id) {
  BatchOutcome out;
  Json request(Json::Object{});
  request.set("v", Json(runtime::wire::kWireVersion));
  request.set("type", Json(std::string("batch")));
  request.set("id", Json(id));
  Json specs_json(Json::Array{});
  for (const runtime::ExperimentSpec& spec : specs) {
    specs_json.push_back(runtime::wire::to_json(spec));
  }
  request.set("specs", std::move(specs_json));
  if (!send(request)) {
    out.error = "send failed";
    return out;
  }
  out.results.reserve(specs.size());
  while (true) {
    const auto frame = receive();
    if (!frame) {
      out.error = "connection closed mid-batch";
      out.results.clear();
      return out;
    }
    const std::string& type = frame->get("type").as_string();
    if (type == "result") {
      auto result = runtime::wire::result_from_json(frame->get("result"));
      if (!result.ok) {
        out.error = "bad result frame: " + result.error;
        out.results.clear();
        return out;
      }
      if (frame->get("index").as_uint() != out.results.size()) {
        out.error = "result frames out of order";
        out.results.clear();
        return out;
      }
      out.results.push_back(std::move(result.value));
      continue;
    }
    if (type == "done") {
      out.done = *frame;
      out.ok = out.results.size() == specs.size();
      if (!out.ok) out.error = "done before all results arrived";
      return out;
    }
    if (type == "error") {
      out.error = frame->get("error").as_string();
      out.code = frame->get("code").as_string();
      out.results.clear();
      return out;
    }
    out.error = "unexpected frame type: \"" + type + "\"";
    out.results.clear();
    return out;
  }
}

BinaryBatchOutcome Client::run_batch_binary(
    const std::vector<runtime::ExperimentSpec>& specs, std::uint64_t id) {
  BinaryBatchOutcome out;
  Json request(Json::Object{});
  request.set("v", Json(runtime::wire::kWireVersion));
  request.set("type", Json(std::string("batch")));
  request.set("id", Json(id));
  request.set("encoding", Json(std::string("binary")));
  Json specs_json(Json::Array{});
  for (const runtime::ExperimentSpec& spec : specs) {
    specs_json.push_back(runtime::wire::to_json(spec));
  }
  request.set("specs", std::move(specs_json));
  if (!send(request)) {
    out.error = "send failed";
    return out;
  }
  const auto announce = receive();
  if (!announce) {
    out.error = "connection closed before results";
    return out;
  }
  if (announce->get("type").as_string() == "error") {
    out.error = announce->get("error").as_string();
    out.code = announce->get("code").as_string();
    return out;
  }
  if (announce->get("type").as_string() != "results" ||
      announce->get("encoding").as_string() != "binary") {
    out.error = "expected a binary results announce frame";
    return out;
  }
  const auto payload = receive_raw();
  if (!payload) {
    out.error = "connection closed before the binary results frame";
    return out;
  }
  auto decoded = runtime::wire::decode_results_binary(*payload);
  if (!decoded.ok) {
    out.error = decoded.error;
    return out;
  }
  if (decoded.value.size() != specs.size() ||
      announce->get("count").as_uint() != specs.size()) {
    out.error = "binary results count mismatch";
    return out;
  }
  out.records = std::move(decoded.value);
  const auto done = receive();
  if (!done || done->get("type").as_string() != "done") {
    out.error = "missing done frame";
    out.records.clear();
    return out;
  }
  out.done = *done;
  out.ok = true;
  return out;
}

bool Client::ping() {
  Json request(Json::Object{});
  request.set("v", Json(runtime::wire::kWireVersion));
  request.set("type", Json(std::string("ping")));
  if (!send(request)) return false;
  const auto reply = receive();
  return reply && reply->get("type").as_string() == "pong";
}

bool Client::shutdown_server() {
  Json request(Json::Object{});
  request.set("v", Json(runtime::wire::kWireVersion));
  request.set("type", Json(std::string("shutdown")));
  if (!send(request)) return false;
  const auto reply = receive();
  return reply && reply->get("type").as_string() == "bye";
}

}  // namespace radiocast::serve
