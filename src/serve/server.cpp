#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "runtime/scheme.hpp"
#include "runtime/wire.hpp"
#include "support/contracts.hpp"

namespace radiocast::serve {

namespace {

using support::Json;

Json make_frame(const char* type) {
  Json j(Json::Object{});
  j.set("v", Json(runtime::wire::kWireVersion));
  j.set("type", Json(std::string(type)));
  return j;
}

Json cache_stats_json(const runtime::PlanCacheStats& s) {
  Json j(Json::Object{});
  j.set("plan_hits", Json(s.plan_hits));
  j.set("plan_misses", Json(s.plan_misses));
  j.set("plan_store_hits", Json(s.plan_store_hits));
  j.set("plan_evictions", Json(s.plan_evictions));
  j.set("compiled_hits", Json(s.compiled_hits));
  j.set("compiled_misses", Json(s.compiled_misses));
  j.set("compiled_store_hits", Json(s.compiled_store_hits));
  j.set("compiled_evictions", Json(s.compiled_evictions));
  return j;
}

/// write() until done; false on a broken pipe / closed peer.
bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(runtime::SweepRunner& runner, ServerOptions options)
    : runner_(runner), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  RC_EXPECTS_MSG(!running(), "server already started");
  int fd = -1;
  if (!options_.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RC_EXPECTS_MSG(fd >= 0, "socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    RC_EXPECTS_MSG(options_.unix_path.size() < sizeof(addr.sun_path),
                   "unix socket path too long: " + options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a past run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      RC_EXPECTS_MSG(false, "bind failed on " + options_.unix_path);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    RC_EXPECTS_MSG(fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      RC_EXPECTS_MSG(false, "bind failed on loopback port " +
                                std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    RC_EXPECTS_MSG(false, "listen failed");
  }
  if (options_.executor.pipeline_depth > 0) {
    executor_ = std::make_unique<Executor>(runner_, options_.executor);
    executor_->start();
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    listen_fd_ = fd;
    running_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && accept_thread_.joinable() == false &&
        workers_.empty()) {
      return;
    }
    stopping_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const auto& conn : conns_) ::shutdown(conn->fd, SHUT_RDWR);
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& w : workers) {
    if (!w.joinable()) continue;
    // A shutdown request reaches stop() from its own connection thread;
    // that thread cannot join itself, so it is released instead (it only
    // has the fd teardown left to run).
    if (w.get_id() == std::this_thread::get_id()) {
      w.detach();
    } else {
      w.join();
    }
  }
  // Drain the pipeline after the connection threads are gone: queued
  // batches still run to completion (their response writes fail on the
  // shut-down sockets, which is fine), and the stage threads join.
  if (executor_ != nullptr) executor_->stop();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : conns_) ::close(conn->fd);
    conns_.clear();
    running_ = false;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return !running_; });
}

bool Server::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

PipelineStats Server::pipeline_stats() const {
  return executor_ != nullptr ? executor_->stats() : PipelineStats{};
}

void Server::accept_loop() {
  while (true) {
    int listen_fd = -1;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    // Request/response framing over loopback: Nagle + delayed ACK adds tens
    // of milliseconds per exchange; disable it.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++stats_.connections;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.push_back(conn);
    workers_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void Server::serve_connection(const std::shared_ptr<Conn>& conn) {
  runtime::wire::FrameReader frames(options_.max_frame_bytes);
  char buf[64 * 1024];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (frames.bad()) break;  // oversized frame: unrecoverable framing
    while (open) {
      const auto payload = frames.next();
      if (!payload) break;
      const auto parsed = support::parse_json(*payload);
      if (!parsed.ok) {
        send_error(conn, Json(), "bad_json", "bad JSON: " + parsed.error);
        continue;
      }
      open = handle(conn, parsed.value);
    }
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  // The fd itself is closed by stop() (it stays in conns_ so shutdown can
  // interrupt a blocked recv); nothing else to release here.
  if (!open) stop();  // shutdown request: stop from outside the accept loop
}

bool Server::handle(const std::shared_ptr<Conn>& conn, const Json& request) {
  const Json& id = request.get("id");
  const std::uint64_t version = request.get("v").as_uint(1);
  if (version > runtime::wire::kWireVersion) {
    send_error(conn, id, "bad_version",
               "wire version " + std::to_string(version) + " not supported");
    return true;
  }
  const std::string& type = request.get("type").as_string();
  if (type == "batch") {
    handle_batch(conn, request);
    return true;
  }
  if (type == "ping") {
    Json pong = make_frame("pong");
    if (!id.is_null()) pong.set("id", id);
    send_json(conn, pong);
    return true;
  }
  if (type == "stats") {
    Json out = make_frame("stats");
    if (!id.is_null()) out.set("id", id);
    const ServerStats s = stats();
    Json server_json(Json::Object{});
    server_json.set("connections", Json(s.connections));
    server_json.set("batches", Json(s.batches));
    server_json.set("specs_run", Json(s.specs_run));
    server_json.set("errors", Json(s.errors));
    server_json.set("graphs", Json(std::uint64_t{runner_.graph_count()}));
    out.set("server", std::move(server_json));
    const PipelineStats p = pipeline_stats();
    Json pipeline_json(Json::Object{});
    pipeline_json.set("enabled", Json(executor_ != nullptr));
    pipeline_json.set("depth",
                      Json(std::uint64_t{options_.executor.pipeline_depth}));
    pipeline_json.set("window_ms",
                      Json(options_.executor.coalesce_window_ms));
    pipeline_json.set("queue_depth", Json(p.queue_depth));
    pipeline_json.set("max_queue_depth", Json(p.max_queue_depth));
    pipeline_json.set("batches", Json(p.batches));
    pipeline_json.set("specs", Json(p.specs));
    pipeline_json.set("submissions", Json(p.submissions));
    pipeline_json.set("coalesced_batches", Json(p.coalesced_batches));
    pipeline_json.set("merged_specs", Json(p.merged_specs));
    pipeline_json.set("fallback_splits", Json(p.fallback_splits));
    out.set("pipeline", std::move(pipeline_json));
    out.set("cache", cache_stats_json(runner_.cache_stats()));
    if (const runtime::PlanStore* store = runner_.store()) {
      const auto st = store->stats();
      Json store_json(Json::Object{});
      store_json.set("dir", Json(store->directory()));
      store_json.set("reads", Json(st.reads));
      store_json.set("read_hits", Json(st.read_hits));
      store_json.set("rejected", Json(st.rejected));
      store_json.set("writes", Json(st.writes));
      store_json.set("orphans_swept", Json(st.orphans_swept));
      store_json.set("records_evicted", Json(st.records_evicted));
      store_json.set("records", Json(std::uint64_t{store->entry_count()}));
      store_json.set("bytes", Json(std::uint64_t{store->total_bytes()}));
      out.set("store", std::move(store_json));
    }
    send_json(conn, out);
    return true;
  }
  if (type == "compact") {
    handle_compact(conn, request);
    return true;
  }
  if (type == "shutdown") {
    Json bye = make_frame("bye");
    if (!id.is_null()) bye.set("id", id);
    send_json(conn, bye);
    return false;
  }
  send_error(conn, id, "bad_request",
             "unknown request type: \"" + type + "\"");
  return true;
}

void Server::handle_batch(const std::shared_ptr<Conn>& conn,
                          const Json& request) {
  const Json id = request.get("id");
  const Json& specs_json = request.get("specs");
  if (specs_json.kind() != Json::Kind::kArray) {
    send_error(conn, id, "bad_request", "batch needs a \"specs\" array");
    return;
  }
  const Json& encoding = request.get("encoding");
  bool binary = false;
  if (!encoding.is_null()) {
    if (encoding.as_string() == "binary") {
      binary = true;
    } else if (encoding.as_string() != "json") {
      send_error(conn, id, "bad_request",
                 "unknown result encoding: \"" + encoding.as_string() + "\"");
      return;
    }
  }
  // Decode and validate the whole batch before running any of it: a batch
  // either runs completely or is rejected with the first offending index.
  // Scheme names are checked here too, so an unregistered scheme is a
  // decode-time `bad_spec` on both paths instead of poisoning a merged
  // sweep.
  std::vector<runtime::ExperimentSpec> specs;
  specs.reserve(specs_json.as_array().size());
  for (std::size_t i = 0; i < specs_json.as_array().size(); ++i) {
    auto decoded = runtime::wire::spec_from_json(specs_json.as_array()[i]);
    if (!decoded.ok) {
      send_error(conn, id, "bad_spec",
                 "spec " + std::to_string(i) + ": " + decoded.error);
      return;
    }
    if (runtime::SchemeRegistry::instance().find(decoded.value.scheme) ==
        nullptr) {
      send_error(conn, id, "bad_spec",
                 "spec " + std::to_string(i) + ": unregistered scheme \"" +
                     decoded.value.scheme + "\"");
      return;
    }
    specs.push_back(std::move(decoded.value));
  }

  if (executor_ != nullptr) {
    executor_->submit(std::move(specs),
                      [this, conn, id, binary](Completion completion) {
                        if (!completion.ok()) {
                          send_error(conn, id, "run_failed",
                                     completion.error);
                          return;
                        }
                        send_batch_results(conn, id, binary, completion);
                      });
    return;
  }

  // Serial path: one batch at a time on the runner mutex.
  Completion completion;
  try {
    const std::lock_guard<std::mutex> lock(runner_mu_);
    std::vector<runtime::BatchResults> sliced = runner_.run_merged({&specs});
    completion.results = std::move(sliced[0].results);
    completion.spec_wall_ns = std::move(sliced[0].spec_wall_ns);
    completion.cache_stats = runner_.cache_stats();
  } catch (const ContractViolation& violation) {
    // Unresolvable graph ref, out-of-range source... the batch is rejected,
    // the connection and server stay up.
    send_error(conn, id, "run_failed", violation.what());
    return;
  }
  send_batch_results(conn, id, binary, completion);
}

void Server::handle_compact(const std::shared_ptr<Conn>& conn,
                            const Json& request) {
  const Json& id = request.get("id");
  runtime::PlanStore* store = runner_.store();
  if (store == nullptr) {
    send_error(conn, id, "no_store",
               "no plan store attached; start with --store");
    return;
  }
  const std::uint64_t max_bytes = request.get("max_bytes").as_uint(0);
  const std::size_t evicted =
      store->compact(static_cast<std::size_t>(max_bytes));
  Json out = make_frame("compacted");
  if (!id.is_null()) out.set("id", id);
  out.set("records_evicted", Json(std::uint64_t{evicted}));
  out.set("records", Json(std::uint64_t{store->entry_count()}));
  out.set("bytes", Json(std::uint64_t{store->total_bytes()}));
  send_json(conn, out);
}

void Server::send_batch_results(const std::shared_ptr<Conn>& conn,
                                const Json& id, bool binary,
                                const Completion& completion) {
  const std::vector<runtime::SchemeResult>& results = completion.results;
  if (binary) {
    std::vector<runtime::wire::BinaryResult> records;
    records.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::uint64_t wall = i < completion.spec_wall_ns.size()
                                     ? completion.spec_wall_ns[i]
                                     : 0;
      records.push_back(runtime::wire::binary_result(results[i], wall));
    }
    Json announce = make_frame("results");
    if (!id.is_null()) announce.set("id", id);
    announce.set("count", Json(std::uint64_t{results.size()}));
    announce.set("encoding", Json("binary"));
    const std::string payload =
        runtime::wire::encode_results_binary(records);
    // The announce frame and the raw binary frame must be adjacent on the
    // wire, so both go out under one hold of the connection's write lock.
    const std::lock_guard<std::mutex> lock(conn->write_mu);
    write_all(conn->fd, runtime::wire::frame(announce.dump()));
    write_all(conn->fd, runtime::wire::frame(payload));
  } else {
    for (std::size_t i = 0; i < results.size(); ++i) {
      Json frame = make_frame("result");
      if (!id.is_null()) frame.set("id", id);
      frame.set("index", Json(std::uint64_t{i}));
      frame.set("result", runtime::wire::to_json(results[i]));
      send_json(conn, frame);
    }
  }
  // Count the batch before the done frame goes out: the done frame is the
  // client's synchronization point, so counters it can observe afterwards
  // (the stats frame, Server::stats()) must already include this batch.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.specs_run += results.size();
  }
  Json done = make_frame("done");
  if (!id.is_null()) done.set("id", id);
  done.set("count", Json(std::uint64_t{results.size()}));
  done.set("stats", cache_stats_json(completion.cache_stats));
  send_json(conn, done);
}

void Server::send_json(const std::shared_ptr<Conn>& conn,
                       const Json& message) {
  const std::string framed = runtime::wire::frame(message.dump());
  const std::lock_guard<std::mutex> lock(conn->write_mu);
  write_all(conn->fd, framed);
}

void Server::send_error(const std::shared_ptr<Conn>& conn, const Json& id,
                        const char* code, const std::string& error) {
  Json frame = make_frame("error");
  if (!id.is_null()) frame.set("id", id);
  frame.set("code", Json(std::string(code)));
  frame.set("error", Json(error));
  send_json(conn, frame);
  count_error();
}

void Server::count_error() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.errors;
}

}  // namespace radiocast::serve
