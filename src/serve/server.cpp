#include "serve/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "runtime/wire.hpp"
#include "support/contracts.hpp"

namespace radiocast::serve {

namespace {

using support::Json;

Json make_frame(const char* type) {
  Json j(Json::Object{});
  j.set("v", Json(runtime::wire::kWireVersion));
  j.set("type", Json(std::string(type)));
  return j;
}

Json cache_stats_json(const runtime::PlanCacheStats& s) {
  Json j(Json::Object{});
  j.set("plan_hits", Json(s.plan_hits));
  j.set("plan_misses", Json(s.plan_misses));
  j.set("plan_store_hits", Json(s.plan_store_hits));
  j.set("plan_evictions", Json(s.plan_evictions));
  j.set("compiled_hits", Json(s.compiled_hits));
  j.set("compiled_misses", Json(s.compiled_misses));
  j.set("compiled_store_hits", Json(s.compiled_store_hits));
  j.set("compiled_evictions", Json(s.compiled_evictions));
  return j;
}

/// write() until done; false on a broken pipe / closed peer.
bool write_all(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(runtime::SweepRunner& runner, ServerOptions options)
    : runner_(runner), options_(std::move(options)) {}

Server::~Server() { stop(); }

void Server::start() {
  RC_EXPECTS_MSG(!running(), "server already started");
  int fd = -1;
  if (!options_.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    RC_EXPECTS_MSG(fd >= 0, "socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    RC_EXPECTS_MSG(options_.unix_path.size() < sizeof(addr.sun_path),
                   "unix socket path too long: " + options_.unix_path);
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());  // stale socket from a past run
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      RC_EXPECTS_MSG(false, "bind failed on " + options_.unix_path);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    RC_EXPECTS_MSG(fd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      RC_EXPECTS_MSG(false, "bind failed on loopback port " +
                                std::to_string(options_.tcp_port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    RC_EXPECTS_MSG(false, "listen failed");
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    listen_fd_ = fd;
    running_ = true;
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  std::thread accept_thread;
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!running_ && accept_thread_.joinable() == false &&
        workers_.empty()) {
      return;
    }
    stopping_ = true;
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    for (const int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
    accept_thread = std::move(accept_thread_);
    workers = std::move(workers_);
  }
  if (accept_thread.joinable()) accept_thread.join();
  for (std::thread& w : workers) {
    if (!w.joinable()) continue;
    // A shutdown request reaches stop() from its own connection thread;
    // that thread cannot join itself, so it is released instead (it only
    // has the fd teardown left to run).
    if (w.get_id() == std::this_thread::get_id()) {
      w.detach();
    } else {
      w.join();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : client_fds_) ::close(fd);
    client_fds_.clear();
    running_ = false;
  }
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  stopped_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return !running_; });
}

bool Server::running() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Server::accept_loop() {
  while (true) {
    int listen_fd = -1;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    // Request/response framing over loopback: Nagle + delayed ACK adds tens
    // of milliseconds per exchange; disable it.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++stats_.connections;
    client_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  runtime::wire::FrameReader frames(options_.max_frame_bytes);
  char buf[64 * 1024];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    frames.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    if (frames.bad()) break;  // oversized frame: unrecoverable framing
    while (open) {
      const auto payload = frames.next();
      if (!payload) break;
      const auto parsed = support::parse_json(*payload);
      if (!parsed.ok) {
        send_error(fd, Json(), "bad JSON: " + parsed.error);
        continue;
      }
      open = handle(fd, parsed.value);
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by stop() (it stays in client_fds_ so shutdown
  // can interrupt a blocked recv); nothing else to release here.
  if (!open) stop();  // shutdown request: stop from outside the accept loop
}

bool Server::handle(int fd, const Json& request) {
  const Json& id = request.get("id");
  const std::uint64_t version = request.get("v").as_uint(1);
  if (version > runtime::wire::kWireVersion) {
    send_error(fd, id,
               "wire version " + std::to_string(version) + " not supported");
    return true;
  }
  const std::string& type = request.get("type").as_string();
  if (type == "batch") {
    handle_batch(fd, request);
    return true;
  }
  if (type == "ping") {
    Json pong = make_frame("pong");
    if (!id.is_null()) pong.set("id", id);
    send_json(fd, pong);
    return true;
  }
  if (type == "stats") {
    Json out = make_frame("stats");
    if (!id.is_null()) out.set("id", id);
    out.set("cache", cache_stats_json(runner_.cache_stats()));
    out.set("graphs", Json(std::uint64_t{runner_.graph_count()}));
    if (const runtime::PlanStore* store = runner_.store()) {
      const auto s = store->stats();
      Json store_json(Json::Object{});
      store_json.set("dir", Json(store->directory()));
      store_json.set("reads", Json(s.reads));
      store_json.set("read_hits", Json(s.read_hits));
      store_json.set("rejected", Json(s.rejected));
      store_json.set("writes", Json(s.writes));
      store_json.set("orphans_swept", Json(s.orphans_swept));
      out.set("store", std::move(store_json));
    }
    const ServerStats s = stats();
    Json server_json(Json::Object{});
    server_json.set("connections", Json(s.connections));
    server_json.set("batches", Json(s.batches));
    server_json.set("specs_run", Json(s.specs_run));
    server_json.set("errors", Json(s.errors));
    out.set("server", std::move(server_json));
    send_json(fd, out);
    return true;
  }
  if (type == "shutdown") {
    Json bye = make_frame("bye");
    if (!id.is_null()) bye.set("id", id);
    send_json(fd, bye);
    return false;
  }
  send_error(fd, id, "unknown request type: \"" + type + "\"");
  return true;
}

void Server::handle_batch(int fd, const Json& request) {
  const Json& id = request.get("id");
  const Json& specs_json = request.get("specs");
  if (specs_json.kind() != Json::Kind::kArray) {
    send_error(fd, id, "batch needs a \"specs\" array");
    return;
  }
  // Decode and validate the whole batch before running any of it: a batch
  // either runs completely or is rejected with the first offending index.
  std::vector<runtime::ExperimentSpec> specs;
  specs.reserve(specs_json.as_array().size());
  for (std::size_t i = 0; i < specs_json.as_array().size(); ++i) {
    auto decoded = runtime::wire::spec_from_json(specs_json.as_array()[i]);
    if (!decoded.ok) {
      send_error(fd, id,
                 "spec " + std::to_string(i) + ": " + decoded.error);
      return;
    }
    specs.push_back(std::move(decoded.value));
  }

  std::vector<runtime::SchemeResult> results;
  runtime::PlanCacheStats stats_after;
  try {
    const std::lock_guard<std::mutex> lock(runner_mu_);
    results = runner_.run(specs);
    stats_after = runner_.cache_stats();
  } catch (const ContractViolation& violation) {
    // Unregistered scheme, unresolvable graph ref, out-of-range source...
    // the batch is rejected, the connection and server stay up.
    send_error(fd, id, violation.what());
    return;
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    Json frame = make_frame("result");
    if (!id.is_null()) frame.set("id", id);
    frame.set("index", Json(std::uint64_t{i}));
    frame.set("result", runtime::wire::to_json(results[i]));
    send_json(fd, frame);
  }
  Json done = make_frame("done");
  if (!id.is_null()) done.set("id", id);
  done.set("count", Json(std::uint64_t{results.size()}));
  done.set("stats", cache_stats_json(stats_after));
  send_json(fd, done);

  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches;
  stats_.specs_run += results.size();
}

void Server::send_json(int fd, const Json& message) {
  write_all(fd, runtime::wire::frame(message.dump()));
}

void Server::send_error(int fd, const Json& id, const std::string& error) {
  Json frame = make_frame("error");
  if (!id.is_null()) frame.set("id", id);
  frame.set("error", Json(error));
  send_json(fd, frame);
  count_error();
}

void Server::count_error() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++stats_.errors;
}

}  // namespace radiocast::serve
