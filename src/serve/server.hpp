/// \file server.hpp
/// \brief radiocast_serve's daemon core: a socket front end on SweepRunner.
///
/// The paper's schemes amortize one expensive labeling over arbitrarily many
/// executions — an economy a batch CLI keeps discarding at process exit.
/// `Server` holds the `SweepRunner` (and its `PlanCache` / `PlanStore`)
/// alive behind a Unix or loopback-TCP socket and serves batched
/// `ExperimentSpec` requests over it, so every client, and every restart
/// with a plan store attached, starts from the warm regime.
///
/// Wire protocol (u32 little-endian length-prefixed JSON frames, see
/// runtime/wire.hpp for the framing and the spec/result encodings):
///
///   -> {"v":2,"type":"batch","id":7,"specs":[<spec>...]}
///   <- {"v":2,"type":"result","id":7,"index":0,"result":<result>}   (per
///      spec, in spec order, streamed as soon as the batch finishes)
///   <- {"v":2,"type":"done","id":7,"count":N,"stats":<cache stats>}
///
///   A batch may opt into the compact binary result encoding with
///   "encoding":"binary" (absent or "json" = JSON results above):
///   <- {"v":2,"type":"results","id":7,"count":N,"encoding":"binary"}
///   <- one RAW frame whose payload is radiocast-resbin/1 (wire.hpp): the
///      N per-spec records, in spec order
///   <- the usual done frame
///
///   -> {"v":2,"type":"ping"}            <- {"v":2,"type":"pong"}
///   -> {"v":2,"type":"stats"}           <- {"v":2,"type":"stats",
///      "server":{...,"graphs":..}, "pipeline":{queue depth, coalesced
///      batches, merged specs, ...}, "cache":{...}, "store":{...}}
///   -> {"v":2,"type":"compact","max_bytes":N}
///                                       <- {"v":2,"type":"compacted",
///      "records_evicted":K,"records":R,"bytes":B}   (plan-store GC)
///   -> {"v":2,"type":"shutdown"}        <- {"v":2,"type":"bye"}  (server
///      then stops accepting and drains)
///
/// Any malformed frame, unknown type, undecodable spec, unregistered
/// scheme, or contract violation while running answers
/// {"v":2,"type":"error","id":...,"code":"...","error":"..."} — `code` is
/// stable and machine-readable (bad_json / bad_version / bad_request /
/// bad_spec / run_failed / no_store); the connection stays usable; only
/// framing-level poison (oversized frame) closes it.
///
/// Concurrency: one accept thread plus one thread per connection, and (with
/// `executor.pipeline_depth` > 0, the default) the two pipeline stage
/// threads of `serve::Executor` — connection threads only decode and
/// enqueue, concurrent batches coalesce into merged sweeps, and encoding
/// overlaps execution (see executor.hpp for the stage diagram).  Depth 0
/// selects the legacy serial path: batches from different connections
/// serialize on the runner mutex.  Either way each connection's responses
/// arrive in the order it sent its batches, and results are byte-identical
/// across paths.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sweep.hpp"
#include "serve/executor.hpp"
#include "support/json.hpp"

namespace radiocast::serve {

struct ServerOptions {
  /// Unix-domain socket path; non-empty selects the Unix listener.
  std::string unix_path;
  /// Loopback TCP port; used when `unix_path` is empty (0 = ephemeral,
  /// read the bound port back with `tcp_port()`).
  std::uint16_t tcp_port = 0;
  /// Frames larger than this poison the connection (decode bombs).
  std::size_t max_frame_bytes = 1 << 26;
  /// Pipeline configuration.  `executor.pipeline_depth` 0 disables the
  /// pipeline entirely (legacy serial path, one batch at a time on the
  /// runner mutex) — the differential tests pin the two paths against each
  /// other.
  ExecutorOptions executor;
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t batches = 0;
  std::uint64_t specs_run = 0;
  std::uint64_t errors = 0;  ///< error frames sent
};

class Server {
 public:
  /// The runner (graphs, cache, attached store) outlives the server.
  Server(runtime::SweepRunner& runner, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept thread (and, with a non-zero
  /// pipeline depth, the executor stage threads).  Violates a precondition
  /// when the address cannot be bound.
  void start();

  /// Stops accepting, closes every live connection, drains the pipeline,
  /// and joins all threads.  Idempotent; also invoked by the destructor.
  void stop();

  /// Blocks until stop() is called (from a shutdown request or another
  /// thread).  The daemon main calls this after start().
  void wait();

  bool running() const;
  /// The bound TCP port (valid after start() on a TCP listener).
  std::uint16_t tcp_port() const noexcept { return bound_port_; }
  const std::string& unix_path() const noexcept { return options_.unix_path; }
  ServerStats stats() const;
  /// Pipeline counters (all zero on the serial path).
  PipelineStats pipeline_stats() const;

 private:
  /// One live connection: its socket plus a write lock so the encode
  /// thread's result frames and the connection thread's error frames never
  /// interleave mid-frame.
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
  };

  void accept_loop();
  void serve_connection(const std::shared_ptr<Conn>& conn);
  /// Handles one decoded request frame; returns false when the connection
  /// asked the whole server to shut down.
  bool handle(const std::shared_ptr<Conn>& conn,
              const support::Json& request);
  void handle_batch(const std::shared_ptr<Conn>& conn,
                    const support::Json& request);
  void handle_compact(const std::shared_ptr<Conn>& conn,
                      const support::Json& request);
  /// Streams one completed batch back: result frames (JSON or the binary
  /// announce + raw resbin frame) then the done frame.
  void send_batch_results(const std::shared_ptr<Conn>& conn,
                          const support::Json& id, bool binary,
                          const Completion& completion);
  void send_json(const std::shared_ptr<Conn>& conn,
                 const support::Json& message);
  void send_error(const std::shared_ptr<Conn>& conn, const support::Json& id,
                  const char* code, const std::string& error);
  void count_error();

  runtime::SweepRunner& runner_;
  ServerOptions options_;
  std::mutex runner_mu_;  ///< serial path: serializes batches
  std::unique_ptr<Executor> executor_;  ///< null on the serial path

  mutable std::mutex mu_;  ///< guards everything below
  ServerStats stats_;
  bool running_ = false;
  bool stopping_ = false;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::condition_variable stopped_cv_;
};

}  // namespace radiocast::serve
