/// \file server.hpp
/// \brief radiocast_serve's daemon core: a socket front end on SweepRunner.
///
/// The paper's schemes amortize one expensive labeling over arbitrarily many
/// executions — an economy a batch CLI keeps discarding at process exit.
/// `Server` holds the `SweepRunner` (and its `PlanCache` / `PlanStore`)
/// alive behind a Unix or loopback-TCP socket and serves batched
/// `ExperimentSpec` requests over it, so every client, and every restart
/// with a plan store attached, starts from the warm regime.
///
/// Wire protocol (u32 little-endian length-prefixed JSON frames, see
/// runtime/wire.hpp for the framing and the spec/result encodings):
///
///   -> {"v":1,"type":"batch","id":7,"specs":[<spec>...]}
///   <- {"v":1,"type":"result","id":7,"index":0,"result":<result>}   (per
///      spec, in spec order, streamed as soon as the batch finishes)
///   <- {"v":1,"type":"done","id":7,"count":N,"stats":<cache stats>}
///
///   -> {"v":1,"type":"ping"}            <- {"v":1,"type":"pong"}
///   -> {"v":1,"type":"stats"}           <- {"v":1,"type":"stats",...}
///   -> {"v":1,"type":"shutdown"}        <- {"v":1,"type":"bye"}  (server
///      then stops accepting and drains)
///
/// Any malformed frame, unknown type, undecodable spec, unregistered
/// scheme, or contract violation while running answers
/// {"v":1,"type":"error","id":...,"error":"..."} — the connection stays
/// usable; only framing-level poison (oversized frame) closes it.
///
/// Concurrency: one accept thread plus one thread per connection.  Batches
/// from different connections serialize on the runner mutex (`SweepRunner`
/// is single-batch by contract; each batch still parallelizes internally on
/// the runner's pool), so concurrent clients interleave at batch
/// granularity and always observe a consistent cache.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/sweep.hpp"
#include "support/json.hpp"

namespace radiocast::serve {

struct ServerOptions {
  /// Unix-domain socket path; non-empty selects the Unix listener.
  std::string unix_path;
  /// Loopback TCP port; used when `unix_path` is empty (0 = ephemeral,
  /// read the bound port back with `tcp_port()`).
  std::uint16_t tcp_port = 0;
  /// Frames larger than this poison the connection (decode bombs).
  std::size_t max_frame_bytes = 1 << 26;
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t batches = 0;
  std::uint64_t specs_run = 0;
  std::uint64_t errors = 0;  ///< error frames sent
};

class Server {
 public:
  /// The runner (graphs, cache, attached store) outlives the server.
  Server(runtime::SweepRunner& runner, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept thread.  Violates a
  /// precondition when the address cannot be bound.
  void start();

  /// Stops accepting, closes every live connection, and joins all threads.
  /// Idempotent; also invoked by the destructor.
  void stop();

  /// Blocks until stop() is called (from a shutdown request or another
  /// thread).  The daemon main calls this after start().
  void wait();

  bool running() const;
  /// The bound TCP port (valid after start() on a TCP listener).
  std::uint16_t tcp_port() const noexcept { return bound_port_; }
  const std::string& unix_path() const noexcept { return options_.unix_path; }
  ServerStats stats() const;

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Handles one decoded request frame; returns false when the connection
  /// asked the whole server to shut down.
  bool handle(int fd, const support::Json& request);
  void handle_batch(int fd, const support::Json& request);
  void send_json(int fd, const support::Json& message);
  void send_error(int fd, const support::Json& id, const std::string& error);
  void count_error();

  runtime::SweepRunner& runner_;
  ServerOptions options_;
  std::mutex runner_mu_;  ///< serializes batches across connections

  mutable std::mutex mu_;  ///< guards everything below
  ServerStats stats_;
  bool running_ = false;
  bool stopping_ = false;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<int> client_fds_;
  std::condition_variable stopped_cv_;
};

}  // namespace radiocast::serve
