// Macro-bench P5 — the million-node regime: streaming construction, parallel
// labeling, parallel square coloring, and a hybrid-backend broadcast on a
// sparse G(n, p) with average degree 8.  Families:
//  - mega/build: sparse_gnp_connected via geometric-skip sampling + sorted
//    runs (never materializes more than O(m)); ok iff connected-sized CSR.
//  - mega/label/tN (N in 1,2,4,8): label_broadcast with N construction
//    threads; every row must be byte-identical to the t1 labeling, and the
//    acceptance row (t8, n >= 10^6) must be >= 3x faster than t1 — asserted
//    only when the host has >= 8 hardware threads (recorded otherwise).
//  - mega/color/tN (N in 1,8): square_coloring equality across thread counts.
//  - mega/broadcast: run_broadcast under kAuto (hybrid backend at this
//    scale); ok iff all informed within the 2n-3 bound.
// Wall budgets are per-node linear envelopes (~5x a 1-core measurement), so
// the scenario is a completes-within-budget gate at any ladder size.
// Sizes below 100000 are raised to 100000: this scenario only measures the
// regime past the 64 MiB bitmap cap.
#include "harness.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "core/runner.hpp"
#include "graph/coloring.hpp"
#include "graph/generators.hpp"
#include "sim/backend.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

constexpr std::uint32_t kMinNodes = 100000;
constexpr std::uint32_t kAcceptanceNodes = 1000000;
constexpr double kAvgDegree = 8.0;
constexpr double kAcceptanceSpeedup = 3.0;

// Per-node wall budgets in nanoseconds (generous linear envelopes; the
// single-core measurement at n = 10^6 sits ~5x below each).
constexpr std::uint64_t kBuildBudgetPerNode = 2000;
constexpr std::uint64_t kLabelBudgetPerNode = 6000;
constexpr std::uint64_t kColorBudgetPerNode = 6000;
constexpr std::uint64_t kBroadcastBudgetPerNode = 12000;

std::uint64_t budget_ns(std::uint32_t n, std::uint64_t per_node) {
  return per_node * n + 500000000ull;  // +0.5 s floor for tiny ladders
}

bool same_labeling(const core::Labeling& a, const core::Labeling& b) {
  return a.labels == b.labels && a.z == b.z && a.source == b.source &&
         a.stages.dom == b.stages.dom && a.stages.fresh == b.stages.fresh;
}

void run(Context& ctx) {
  const auto hw = sim::resolve_thread_count(0);

  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t s : ctx.sizes()) {
    const std::uint32_t n = std::max(kMinNodes, s);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }

  for (const std::uint32_t n : sizes) {
    // --- mega/build: streamed sparse generator -------------------------
    graph::Graph g;
    {
      Sample s;
      s.family = "mega/build";
      s.wall_ns = time_ns([&] {
        Rng rng(n);
        g = graph::sparse_gnp_connected(n, kAvgDegree, rng);
      });
      s.n = g.node_count();
      s.m = g.edge_count();
      s.ok = g.node_count() == n &&
             s.wall_ns <= budget_ns(n, kBuildBudgetPerNode);
      ctx.record(std::move(s));
    }

    // --- mega/label/tN: parallel labeling construction -----------------
    core::Labeling reference;
    std::uint64_t t1_wall = 0;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      core::Labeling labeling;
      core::LabelingOptions opt;
      opt.threads = threads;
      const std::uint64_t wall =
          time_ns([&] { labeling = core::label_broadcast(g, 0, opt); });
      if (threads == 1) {
        reference = std::move(labeling);
        t1_wall = wall;
      }
      const bool identical =
          threads == 1 || same_labeling(labeling, reference);
      const double speedup =
          wall ? static_cast<double>(t1_wall) / static_cast<double>(wall)
               : 0.0;

      Sample s;
      s.family = "mega/label/t" + std::to_string(threads);
      s.n = n;
      s.m = g.edge_count();
      s.wall_ns = wall;
      s.ok = identical && wall <= budget_ns(n, kLabelBudgetPerNode);
      s.extra = {{"speedup_vs_t1", speedup},
                 {"ell", static_cast<double>(reference.stages.ell)},
                 {"hw_threads", static_cast<double>(hw)}};
      // Acceptance: >= 3x at 8 construction threads on the 10^6-node row,
      // gated on the host actually having >= 8 hardware threads.
      if (threads == 8 && hw >= 8 && n >= kAcceptanceNodes) {
        s.ok = s.ok && speedup >= kAcceptanceSpeedup;
      }
      ctx.record(std::move(s));
    }

    // --- mega/color/tN: parallel square coloring ------------------------
    graph::Coloring color1;
    for (const std::size_t threads : {1u, 8u}) {
      graph::Coloring coloring;
      const std::uint64_t wall =
          time_ns([&] { coloring = graph::square_coloring(g, threads); });
      if (threads == 1) color1 = std::move(coloring);
      const bool identical =
          threads == 1 || (coloring.color == color1.color &&
                           coloring.count == color1.count);

      Sample s;
      s.family = "mega/color/t" + std::to_string(threads);
      s.n = n;
      s.m = g.edge_count();
      s.wall_ns = wall;
      s.ok = identical && wall <= budget_ns(n, kColorBudgetPerNode);
      s.extra = {{"colors", static_cast<double>(color1.count)}};
      ctx.record(std::move(s));
    }

    // --- mega/broadcast: end-to-end under kAuto (hybrid at this scale) --
    {
      core::BroadcastRun run;
      core::RunOptions opt;
      opt.backend = ctx.backend();
      opt.dispatch = ctx.dispatch();
      opt.threads = ctx.threads();
      Sample s;
      s.family = "mega/broadcast";
      s.n = n;
      s.m = g.edge_count();
      s.wall_ns = time_ns([&] { run = core::run_broadcast(g, 0, opt); });
      s.rounds = run.completion_round;
      s.transmissions = run.data_tx_count + run.stay_count;
      s.ok = run.all_informed && run.completion_round <= run.bound &&
             s.wall_ns <= budget_ns(n, kBroadcastBudgetPerNode);
      s.extra = {{"bound", static_cast<double>(run.bound)},
                 {"ell", static_cast<double>(run.ell)}};
      ctx.record(std::move(s));
    }
  }
}

const bool registered = register_scenario(
    {"mega_scale",
     "million-node regime: streamed build, parallel labeling, hybrid "
     "broadcast",
     {"scaling"},
     &run});

}  // namespace
}  // namespace radiocast::bench
