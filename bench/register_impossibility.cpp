// Experiment E7 — the §1 impossibility claim: without labels, deterministic
// broadcast is blocked on even cycles, hypercubes and K_{a,b} by the
// equitable-partition certificate; the paper's λ labeling removes every
// obstruction.
#include "harness.hpp"

#include "analysis/symmetry.hpp"
#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  struct Case {
    std::string name;
    graph::Graph g;
    graph::NodeId source;
    bool expect_blocked;
  };
  std::vector<Case> cases;
  cases.push_back({"C4", graph::cycle(4), 0, true});
  for (const std::uint32_t n : {6u, 8u, 12u}) {
    cases.push_back({"C" + std::to_string(n), graph::cycle(n), 0, true});
  }
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    cases.push_back(
        {"C" + std::to_string(n) + "-odd", graph::cycle(n), 0, false});
  }
  cases.push_back({"K_{2,3}", graph::complete_bipartite(2, 3), 0, true});
  cases.push_back({"K_{4,4}", graph::complete_bipartite(4, 4), 0, true});
  cases.push_back({"Q3-hypercube", graph::hypercube(3), 0, true});
  cases.push_back({"P7-mid-source", graph::path(7), 3, false});
  cases.push_back({"S9-center", graph::star(9), 0, false});

  for (const auto& c : cases) {
    Sample s;
    s.family = c.name;
    s.n = c.g.node_count();
    s.m = c.g.edge_count();
    bool unlabeled_blocked = false, labeled_blocked = false;
    std::uint32_t classes = 0;
    s.wall_ns = time_ns([&] {
      const std::vector<std::uint32_t> plain(c.g.node_count(), 0);
      const auto unl = analysis::analyze_symmetry(c.g, plain, c.source);
      unlabeled_blocked = unl.broadcast_blocked;
      classes = unl.class_count;

      const auto lab = core::label_broadcast(c.g, c.source);
      std::vector<std::uint32_t> colors(c.g.node_count());
      for (graph::NodeId v = 0; v < c.g.node_count(); ++v) {
        colors[v] = lab.labels[v].value();
      }
      labeled_blocked =
          analysis::analyze_symmetry(c.g, colors, c.source).broadcast_blocked;
    });
    s.ok = unlabeled_blocked == c.expect_blocked && !labeled_blocked;
    s.extra = {{"classes", static_cast<double>(classes)},
               {"unlabeled_blocked", unlabeled_blocked ? 1.0 : 0.0}};
    ctx.record(std::move(s));
  }

  // How often does pure symmetry block unlabeled broadcast at random?
  Sample s;
  s.family = "gnp-10-obstruction-rate";
  s.n = 10;
  constexpr int kTrials = 200;
  int blocked = 0;
  s.wall_ns = time_ns([&] {
    Rng rng(99);
    for (int i = 0; i < kTrials; ++i) {
      const auto g = graph::gnp_connected(10, 0.25, rng);
      const std::vector<std::uint32_t> plain(g.node_count(), 0);
      if (analysis::analyze_symmetry(g, plain, 0).broadcast_blocked) ++blocked;
    }
  });
  s.extra = {{"blocked", static_cast<double>(blocked)},
             {"trials", static_cast<double>(kTrials)}};
  ctx.record(std::move(s));
}

const bool registered = register_scenario(
    {"impossibility",
     "paper 1: equitable-partition certificates block unlabeled broadcast",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
