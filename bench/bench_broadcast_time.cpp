// Experiments E1 + E9 — Theorem 2.9 ("broadcast completes within 2n-3
// rounds") and the §5 remark "our algorithm works in time O(n)".
//
// For every family in the standard suite and a geometric size ladder, run
// algorithm B and report the completion round against the 2n-3 bound; the
// series section regresses completion vs n per family (paths pin the constant
// at exactly 2).
#include <cmath>
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "graph/traversal.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf(
      "Experiment E1: Theorem 2.9 — completion round vs the 2n-3 bound\n\n");
  par::ThreadPool pool;
  bool all_ok = true;

  struct Row {
    std::string family;
    std::uint32_t n = 0, ecc = 0, ell = 0;
    std::size_t m = 0;
    std::uint64_t rounds = 0, bound = 0;
    bool ok = false;
  };

  TextTable table({"family", "n", "m", "ecc(s)", "ell", "rounds", "bound",
                   "rounds/bound"});
  for (const std::uint32_t n : {16u, 64u, 256u, 1024u}) {
    const auto suite = analysis::standard_suite(n, /*seed=*/n);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      const auto run = core::run_broadcast(w.graph, w.source);
      Row r;
      r.family = w.family;
      r.n = w.graph.node_count();
      r.m = w.graph.edge_count();
      r.ecc = graph::eccentricity(w.graph, w.source);
      r.ell = run.ell;
      r.rounds = run.completion_round;
      r.bound = run.bound;
      r.ok = run.all_informed && run.completion_round <= run.bound;
      return r;
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.ok;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.m)
          .add(r.ecc)
          .add(r.ell)
          .add(r.rounds)
          .add(r.bound)
          .add(static_cast<double>(r.rounds) / static_cast<double>(r.bound), 3);
    }
  }
  std::printf("%s\n", table.str().c_str());

  std::printf("Experiment E9: O(n) series — completion round vs n (paths are "
              "the 2n-3 extremal case)\n\n");
  TextTable series(
      {"family", "n=32", "n=64", "n=128", "n=256", "n=512", "slope~"});
  struct FamilyGen {
    const char* name;
    graph::Graph (*make)(std::uint32_t);
  };
  const FamilyGen gens[] = {
      {"path", [](std::uint32_t n) { return graph::path(n); }},
      {"cycle", [](std::uint32_t n) { return graph::cycle(n); }},
      {"star", [](std::uint32_t n) { return graph::star(n); }},
      {"grid~",
       [](std::uint32_t n) {
         const auto side = static_cast<std::uint32_t>(
             std::max(2.0, std::sqrt(static_cast<double>(n))));
         return graph::grid(side, side);
       }},
      {"complete", [](std::uint32_t n) { return graph::complete(n); }},
  };
  for (const auto& gen : gens) {
    series.row().add(gen.name);
    double first = 0, last = 0;
    std::uint32_t first_n = 0, last_n = 0;
    for (const std::uint32_t n : {32u, 64u, 128u, 256u, 512u}) {
      const auto g = gen.make(n);
      const auto run = core::run_broadcast(g, 0);
      all_ok = all_ok && run.all_informed;
      series.add(run.completion_round);
      if (first_n == 0) {
        first = static_cast<double>(run.completion_round);
        first_n = g.node_count();
      }
      last = static_cast<double>(run.completion_round);
      last_n = g.node_count();
    }
    series.add((last - first) / static_cast<double>(last_n - first_n), 3);
  }
  std::printf("%s\n", series.str().c_str());
  std::printf("paper: every graph <= 2n-3 rounds, O(n) overall; measured: %s\n",
              all_ok ? "all runs within bound" : "BOUND VIOLATED");
  return all_ok ? 0 : 1;
}
