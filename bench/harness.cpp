#include "harness.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "runtime/flags.hpp"
#include "support/table.hpp"

namespace radiocast::bench {
namespace {

std::vector<Scenario>& mutable_registry() {
  static std::vector<Scenario> scenarios;
  return scenarios;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      if (!cur.empty()) parts.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

}  // namespace

std::vector<std::uint32_t> Context::sizes(std::uint32_t cap) const {
  std::vector<std::uint32_t> out;
  for (const auto s : sizes_) {
    const auto clamped = std::min(s, cap);
    if (std::find(out.begin(), out.end(), clamped) == out.end()) {
      out.push_back(clamped);
    }
  }
  return out;
}

void Context::record(Sample s) {
  s.rep = rep_;
  const std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(std::move(s));
}

bool register_scenario(Scenario s) {
  auto& reg = mutable_registry();
  for (const auto& existing : reg) {
    if (existing.name == s.name) return false;
  }
  reg.push_back(std::move(s));
  return true;
}

std::vector<Scenario> registry() {
  auto reg = mutable_registry();
  std::sort(reg.begin(), reg.end(),
            [](const Scenario& a, const Scenario& b) {
              return a.name < b.name;
            });
  return reg;
}

bool matches_filter(const Scenario& s, const std::string& filter) {
  if (filter.empty()) return true;
  for (const auto& term : split(filter, ',')) {
    if (s.name.find(term) != std::string::npos) return true;
    for (const auto& tag : s.tags) {
      if (tag == term) return true;
    }
  }
  return false;
}

std::vector<Scenario> select(const std::string& filter) {
  std::vector<Scenario> chosen;
  for (const auto& s : registry()) {
    if (matches_filter(s, filter)) chosen.push_back(s);
  }
  return chosen;
}

Options parse_args(int argc, const char* const* argv) {
  Options opt;
  const auto need_value = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // The execution knobs go through the shared runtime parser, so the
    // bench and the CLI accept the same values with the same errors.
    const auto shared = runtime::parse_execution_flag(
        arg, need_value(i) ? argv[i + 1] : nullptr, /*allow_compiled=*/false,
        opt.exec);
    if (shared.status == runtime::FlagStatus::kOk) {
      ++i;
      continue;
    }
    if (shared.status == runtime::FlagStatus::kError) {
      opt.error = shared.error;
      return opt;
    }
    if (arg == "--help" || arg == "-h") {
      opt.help = true;
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--filter") {
      if (!need_value(i)) {
        opt.error = "--filter requires a value";
        return opt;
      }
      opt.filter = argv[++i];
    } else if (arg == "--json") {
      if (!need_value(i)) {
        opt.error = "--json requires a path";
        return opt;
      }
      opt.json_path = argv[++i];
    } else if (arg == "--repeat") {
      if (!need_value(i)) {
        opt.error = "--repeat requires a count";
        return opt;
      }
      opt.repeat = std::atoi(argv[++i]);
      if (opt.repeat < 1) {
        opt.error = "--repeat must be >= 1";
        return opt;
      }
    } else if (arg == "--isa") {
      if (!need_value(i)) {
        opt.error = "--isa requires a value (auto, scalar, avx2, avx512)";
        return opt;
      }
      const auto isa = sim::simd::parse_isa(argv[++i]);
      if (!isa) {
        opt.error = std::string("unknown --isa '") + argv[i] +
                    "' (expected auto, scalar, avx2, or avx512)";
        return opt;
      }
      if (!sim::simd::available(*isa)) {
        opt.error = std::string("--isa ") + argv[i] +
                    " is not available on this host";
        return opt;
      }
      opt.isa = *isa;
    } else if (arg == "--sizes") {
      if (!need_value(i)) {
        opt.error = "--sizes requires a comma-separated list";
        return opt;
      }
      opt.sizes.clear();
      for (const auto& tok : split(argv[++i], ',')) {
        const long long v = std::atoll(tok.c_str());
        // The workload suites (analysis::standard_suite) require n >= 8.
        if (v < 8 || v > 0xFFFFFFFFll) {
          opt.error =
              "--sizes entries must be integers >= 8, got '" + tok + "'";
          return opt;
        }
        opt.sizes.push_back(static_cast<std::uint32_t>(v));
      }
      if (opt.sizes.empty()) {
        opt.error = "--sizes requires at least one size";
        return opt;
      }
    } else {
      opt.error = "unknown argument '" + arg + "'";
      return opt;
    }
  }
  return opt;
}

std::vector<ScenarioResult> run_scenarios(const std::vector<Scenario>& chosen,
                                          const Options& opt) {
  par::ThreadPool pool(opt.exec.threads);
  std::vector<ScenarioResult> results;
  results.reserve(chosen.size());
  for (const auto& s : chosen) {
    ScenarioResult result;
    result.scenario = s;
    for (int rep = 0; rep < opt.repeat; ++rep) {
      Context ctx(pool, opt.sizes, opt.repeat, rep, opt.exec);
      result.wall_ns += time_ns([&] { s.run(ctx); });
      for (auto& sample : ctx.samples()) {
        result.ok = result.ok && sample.ok;
        result.samples.push_back(std::move(sample));
      }
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_sample(std::ostringstream& os, const std::string& scenario,
                   const Sample& s) {
  os << "{\"scenario\":\"" << json_escape(scenario) << "\","
     << "\"family\":\"" << json_escape(s.family) << "\","
     << "\"rep\":" << s.rep << ","
     << "\"n\":" << s.n << ","
     << "\"m\":" << s.m << ","
     << "\"rounds\":" << s.rounds << ","
     << "\"transmissions\":" << s.transmissions << ","
     << "\"wall_ns\":" << s.wall_ns << ","
     << "\"ok\":" << (s.ok ? "true" : "false");
  if (!s.extra.empty()) {
    os << ",\"extra\":{";
    for (std::size_t i = 0; i < s.extra.size(); ++i) {
      if (i) os << ",";
      std::ostringstream num;
      num << s.extra[i].second;
      os << "\"" << json_escape(s.extra[i].first) << "\":" << num.str();
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

std::string to_json(const std::vector<ScenarioResult>& results,
                    const Options& opt) {
  std::ostringstream os;
  os << "{\"schema\":\"radiocast-bench/1\","
     << "\"repeat\":" << opt.repeat << ","
     << "\"filter\":\"" << json_escape(opt.filter) << "\","
     << "\"backend\":\"" << sim::to_string(opt.exec.backend) << "\","
     << "\"dispatch\":\"" << sim::to_string(opt.exec.dispatch) << "\","
     << "\"isa\":\"" << sim::simd::to_string(sim::simd::active_isa())
     << "\","
     << "\"sizes\":[";
  for (std::size_t i = 0; i < opt.sizes.size(); ++i) {
    if (i) os << ",";
    os << opt.sizes[i];
  }
  os << "],\"scenarios\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i) os << ",";
    os << "{\"scenario\":\"" << json_escape(r.scenario.name) << "\","
       << "\"tags\":[";
    for (std::size_t t = 0; t < r.scenario.tags.size(); ++t) {
      if (t) os << ",";
      os << "\"" << json_escape(r.scenario.tags[t]) << "\"";
    }
    os << "],\"wall_ns\":" << r.wall_ns << ","
       << "\"ok\":" << (r.ok ? "true" : "false") << ","
       << "\"samples\":[";
    for (std::size_t j = 0; j < r.samples.size(); ++j) {
      if (j) os << ",";
      append_sample(os, r.scenario.name, r.samples[j]);
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

namespace {

constexpr const char* kUsage =
    "radiocast_bench — unified benchmark harness\n"
    "\n"
    "  --list            print registered scenarios and exit\n"
    "  --filter TERMS    comma-separated terms; run scenarios whose name\n"
    "                    contains a term or whose tags include it\n"
    "  --sizes N,N,...   instance-size ladder, entries >= 8\n"
    "                    (default 16,64,256)\n"
    "  --repeat K        repetitions per scenario (default 1)\n"
    "  --threads T       worker threads for sweeps and sharded engines\n"
    "                    (default: hardware concurrency)\n"
    "  --backend B       engine backend for engine-driving scenarios:\n"
    "                    auto (density/size-based), scalar, bit, sharded,\n"
    "                    or hybrid\n"
    "                    (default auto)\n"
    "  --dispatch D      protocol-dispatch strategy for engine-driving\n"
    "                    scenarios: auto (active-set iff protocols hint),\n"
    "                    scan, or active (default auto)\n"
    "  --isa I           force the bit-kernel instruction set: auto (best\n"
    "                    available, or RADIOCAST_FORCE_ISA when set), scalar,\n"
    "                    avx2, or avx512; errors if the host lacks I\n"
    "                    (default auto)\n"
    "  --json PATH       write the radiocast-bench/1 JSON document to PATH\n";

}  // namespace

int run_main(int argc, const char* const* argv, std::ostream& out) {
  const Options opt = parse_args(argc, argv);
  if (!opt.error.empty()) {
    out << "error: " << opt.error << "\n\n" << kUsage;
    return 2;
  }
  if (opt.help) {
    out << kUsage;
    return 0;
  }
  // Pin the kernel dispatch before any engine is constructed (backends
  // capture the kernel table once).  kAuto clears the programmatic force, so
  // RADIOCAST_FORCE_ISA / best-available still apply.
  sim::simd::force_isa(opt.isa);
  if (opt.list) {
    TextTable table({"scenario", "tags", "description"});
    for (const auto& s : registry()) {
      std::string tags;
      for (const auto& t : s.tags) tags += (tags.empty() ? "" : ",") + t;
      table.row().add(s.name).add(tags).add(s.description);
    }
    out << table.str() << "\n";
    return 0;
  }

  const auto chosen = select(opt.filter);
  if (chosen.empty()) {
    out << "error: --filter '" << opt.filter << "' selects no scenarios "
        << "(see --list)\n";
    return 2;
  }

  const auto results = run_scenarios(chosen, opt);

  TextTable table({"scenario", "samples", "ok", "wall-ms"});
  bool all_ok = true;
  for (const auto& r : results) {
    all_ok = all_ok && r.ok;
    table.row()
        .add(r.scenario.name)
        .add(r.samples.size())
        .add(r.ok ? "yes" : "NO")
        .add(static_cast<double>(r.wall_ns) / 1e6, 2);
  }
  out << table.str() << "\n";

  if (!opt.json_path.empty()) {
    std::ofstream f(opt.json_path);
    if (!f) {
      out << "error: cannot open '" << opt.json_path << "' for writing\n";
      return 2;
    }
    f << to_json(results, opt) << "\n";
    out << "wrote " << opt.json_path << "\n";
  }

  out << (all_ok ? "all scenarios OK" : "SCENARIO FAILURES PRESENT") << "\n";
  return all_ok ? 0 : 1;
}

}  // namespace radiocast::bench
