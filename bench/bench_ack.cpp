// Experiment E2 — Theorem 3.9 / Corollary 3.8: acknowledged broadcast.
//
// For every family, B_ack must inform everyone by t <= 2n-3 and deliver the
// source's first "ack" at t' ∈ [2ℓ-2, 3ℓ-4].  The paper states
// t' <= t + n - 2; the ℓ = n extremal graphs (end-sourced paths) need
// t + n - 1 — the table's last column flags exactly those rows (documented
// discrepancy, see EXPERIMENTS.md).
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E2: Theorem 3.9 — acknowledged broadcast windows\n\n");
  par::ThreadPool pool;

  struct Row {
    std::string family;
    std::uint32_t n = 0, ell = 0;
    std::uint64_t t = 0, t_ack = 0;
    bool in_cor38 = false, in_paper_window = false, in_fixed_window = false;
  };

  bool all_ok = true;
  TextTable table({"family", "n", "ell", "t(informed)", "t'(ack)",
                   "cor3.8[2l-2,3l-4]", "paper t+n-2", "fixed t+n-1"});
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const auto suite = analysis::standard_suite(n, 7 * n);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      const auto run = core::run_acknowledged(w.graph, w.source);
      Row r;
      r.family = w.family;
      r.n = w.graph.node_count();
      r.ell = run.ell;
      r.t = run.completion_round;
      r.t_ack = run.ack_round;
      const std::uint64_t ell = run.ell;
      r.in_cor38 = run.all_informed && run.ack_round >= 2 * ell - 2 &&
                   run.ack_round <= std::max<std::uint64_t>(3 * ell - 4, 2 * ell - 2);
      r.in_paper_window = run.ack_round >= r.t + 1 && r.t + r.n >= 2 &&
                          run.ack_round <= r.t + r.n - 2;
      r.in_fixed_window =
          run.ack_round >= r.t + 1 && run.ack_round <= r.t + r.n - 1;
      return r;
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.in_cor38 && r.in_fixed_window;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.ell)
          .add(r.t)
          .add(r.t_ack)
          .add(r.in_cor38 ? "yes" : "NO")
          .add(r.in_paper_window ? "yes" : "no (l=n)")
          .add(r.in_fixed_window ? "yes" : "NO");
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: t <= 2n-3, t' in {t+1..t+n-2}; measured: Cor 3.8 window "
              "always holds, the stated n-2 slack fails only on l=n graphs "
              "(paths) where t' = t+n-1.  overall: %s\n",
              all_ok ? "OK" : "VIOLATION");
  return all_ok ? 0 : 1;
}
