// P2 — google-benchmark micro-bench: simulator throughput (rounds/s and
// deliveries/s for full B executions) and thread-pool sweep scaling, the
// HPC-facing measurements of the harness itself.
#include <benchmark/benchmark.h>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "onebit/labeler.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"

namespace {

using namespace radiocast;

void BM_EngineFullBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(n);
  const auto g = graph::gnp_connected(n, 6.0 / n, rng);
  const auto labeling = core::label_broadcast(g, 0);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1));
    engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                     4ull * n + 8);
    rounds += engine.round();
    benchmark::DoNotOptimize(engine.all_informed());
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["node-rounds/s"] = benchmark::Counter(
      static_cast<double>(rounds) * n, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineFullBroadcast)->RangeMultiplier(4)->Range(64, 16384);

void BM_EngineStepDense(benchmark::State& state) {
  // Worst-case per-round cost: everyone transmits every round (all collide).
  class Chatter final : public sim::Protocol {
   public:
    std::optional<sim::Message> on_round() override {
      return sim::Message{sim::MsgKind::kData, 0, 0, std::nullopt};
    }
    void on_hear(const sim::Message&) override {}
    bool informed() const override { return true; }
  };
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::complete(n);
  std::vector<std::unique_ptr<sim::Protocol>> p;
  for (std::uint32_t v = 0; v < n; ++v) p.push_back(std::make_unique<Chatter>());
  sim::Engine engine(g, std::move(p));
  for (auto _ : state) {
    engine.step();
  }
  state.counters["edge-visits/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n * (n - 1),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineStepDense)->RangeMultiplier(2)->Range(32, 512);

void BM_ParallelSweep(benchmark::State& state) {
  // End-to-end experiment sweep (label + run 64 graphs) on k threads.
  const auto threads = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<graph::Graph> graphs;
  for (int i = 0; i < 64; ++i) {
    graphs.push_back(graph::gnp_connected(256, 6.0 / 256, rng));
  }
  par::ThreadPool pool(threads);
  for (auto _ : state) {
    std::uint64_t total = 0;
    const auto rounds = par::parallel_map(pool, graphs.size(), [&](std::size_t i) {
      return core::run_broadcast(graphs[i], 0).completion_round;
    });
    for (const auto r : rounds) total += r;
    benchmark::DoNotOptimize(total);
  }
  state.counters["graphs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 64, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelSweep)->DenseRange(1, 4)->UseRealTime();

void BM_OneBitSearch(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::grid(side, side);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    onebit::OneBitOptions opt;
    opt.max_attempts = 64;
    opt.seed = seed++;
    benchmark::DoNotOptimize(onebit::find_onebit_labeling(g, 0, opt));
  }
}
BENCHMARK(BM_OneBitSearch)->DenseRange(4, 12, 4);

}  // namespace

BENCHMARK_MAIN();
