// Experiment E4 — the §3 closing construction: after B_ack(µ) the source
// broadcasts m (its first-ack round); every node learns m strictly before
// round 2m and all nodes therefore share the common completion round 2m.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E4: common completion round 2m (paper §3 end)\n\n");
  par::ThreadPool pool;

  struct Row {
    std::string family;
    std::uint32_t n = 0;
    std::uint64_t m = 0, common = 0, last_learned = 0;
    bool ok = false;
  };

  bool all_ok = true;
  TextTable table({"family", "n", "m", "common=2m", "last-learned", "agree"});
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const auto suite = analysis::standard_suite(n, 3 * n + 1);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      const auto run = core::run_common_round(w.graph, w.source);
      return Row{w.family, w.graph.node_count(), run.m, run.common_round,
                 run.last_learned, run.ok};
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.ok && r.last_learned < r.common;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.m)
          .add(r.common)
          .add(r.last_learned)
          .add(r.ok ? "yes" : "NO");
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: all nodes know completion in round 2m; measured: %s\n",
              all_ok ? "agreement at 2m in every run, learned < 2m" : "FAILED");
  return all_ok ? 0 : 1;
}
