// Ablation A2 — λ_arb's free parameter: WHERE to place the coordinator r.
// The paper says "choose an arbitrary node r"; placement changes T (the
// phase-1 span, twice replayed) and hence the total time of B_arb.  A central
// r minimizes eccentricity and should roughly halve the session versus a
// peripheral r on deep networks.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "graph/traversal.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Ablation A2: coordinator placement for lambda_arb\n\n");
  par::ThreadPool pool;

  struct Row {
    std::string family;
    std::uint32_t n = 0;
    std::uint64_t t_central = 0, t_peripheral = 0, t_default = 0;
    bool ok = false;
  };

  bool all_ok = true;
  const auto suite = analysis::quick_suite(64, 4096);
  const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
    const auto& w = suite[i];
    Row r;
    r.family = w.family;
    r.n = w.graph.node_count();

    // Central = minimum eccentricity; peripheral = maximum.
    graph::NodeId central = 0, peripheral = 0;
    std::uint32_t best = ~0u, worst = 0;
    for (graph::NodeId v = 0; v < r.n; ++v) {
      const auto ecc = graph::eccentricity(w.graph, v);
      if (ecc < best) {
        best = ecc;
        central = v;
      }
      if (ecc > worst) {
        worst = ecc;
        peripheral = v;
      }
    }
    const graph::NodeId source = w.source;
    const auto run_c = core::run_arbitrary(w.graph, source, central);
    const auto run_p = core::run_arbitrary(w.graph, source, peripheral);
    const auto run_d = core::run_arbitrary(w.graph, source, 0);
    r.ok = run_c.ok && run_p.ok && run_d.ok;
    r.t_central = run_c.total_rounds;
    r.t_peripheral = run_p.total_rounds;
    r.t_default = run_d.total_rounds;
    return r;
  });

  TextTable table({"family", "n", "r=central", "r=peripheral", "r=node0",
                   "peripheral/central"});
  for (const auto& r : rows) {
    all_ok = all_ok && r.ok;
    table.row()
        .add(r.family)
        .add(r.n)
        .add(r.t_central)
        .add(r.t_peripheral)
        .add(r.t_default)
        .add(static_cast<double>(r.t_peripheral) /
                 static_cast<double>(r.t_central),
             2);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("takeaway: correctness is placement-independent; a central "
              "coordinator shortens every phase (T ~ 2·ecc(r)), so deployment "
              "should pick r in the graph center.  all ok: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
