// Ablation A1 — WHICH minimal dominating subset DOM_i is selected.  All
// policies are correct; this measures their effect on ℓ, the completion
// round, "stay" traffic and the worst per-node duty cycle.
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(96)) {
    const auto suite = analysis::standard_suite(n, 2718);
    std::vector<std::pair<std::size_t, core::DomPolicy>> jobs;
    for (std::size_t i = 0; i < suite.size(); ++i) {
      for (const auto p : core::kAllDomPolicies) jobs.emplace_back(i, p);
    }
    const auto samples =
        par::parallel_map(ctx.pool(), jobs.size(), [&](std::size_t j) {
          const auto& [i, policy] = jobs[j];
          const auto& w = suite[i];
          Sample s;
          s.family = w.family + "/" + core::to_string(policy);
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::BroadcastRun run;
          s.wall_ns = time_ns([&] {
            core::RunOptions opt;
            opt.policy = policy;
            opt.seed = 31337;
            opt.trace = sim::TraceLevel::kFull;
            opt.backend = ctx.backend();
            opt.dispatch = ctx.dispatch();
            run = core::run_broadcast(w.graph, w.source, opt);
          });
          s.rounds = run.completion_round;
          s.transmissions = run.data_tx_count + run.stay_count;
          s.ok = run.all_informed;
          s.extra = {{"ell", static_cast<double>(run.ell)},
                     {"stay_tx", static_cast<double>(run.stay_count)},
                     {"max_node_tx", static_cast<double>(run.max_node_tx)}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"dom_policies",
     "ablation: minimal-dominating-subset policy vs rounds and traffic",
     {"smoke", "ablation"},
     &run});

}  // namespace
}  // namespace radiocast::bench
