// Experiment E1/E9 — Theorem 2.9: completion round vs the 2n-3 bound across
// the standard suite and the --sizes ladder (paths pin the O(n) constant).
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "graph/traversal.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(1024)) {
    const auto suite = analysis::standard_suite(n, /*seed=*/n);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::BroadcastRun run;
          core::RunOptions opt;
          opt.backend = ctx.backend();
          opt.dispatch = ctx.dispatch();
          s.wall_ns = time_ns(
              [&] { run = core::run_broadcast(w.graph, w.source, opt); });
          s.rounds = run.completion_round;
          s.transmissions = run.data_tx_count + run.stay_count;
          s.ok = run.all_informed && run.completion_round <= run.bound;
          s.extra = {{"ell", static_cast<double>(run.ell)},
                     {"bound", static_cast<double>(run.bound)},
                     {"ecc", static_cast<double>(
                                 graph::eccentricity(w.graph, w.source))}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"broadcast_time",
     "Theorem 2.9: completion round vs the 2n-3 bound on the standard suite",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
