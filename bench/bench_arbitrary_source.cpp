// Experiment E5 — B_arb (§4): the labeling does not know the source.  For
// each family, every node (sampled stride for big graphs) plays the source,
// including the coordinator r and the ack anchor z; the run must deliver µ to
// all nodes and end with a network-wide agreed completion round.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E5: arbitrary-source broadcast (6 label values)\n\n");
  par::ThreadPool pool;

  struct Row {
    std::string family;
    std::uint32_t n = 0, sources = 0, failures = 0;
    std::uint64_t t_min = ~0ull, t_max = 0;  // total rounds range
    std::uint64_t T = 0;
  };

  bool all_ok = true;
  TextTable table({"family", "n", "sources-tried", "failures", "T",
                   "rounds(min)", "rounds(max)"});
  for (const std::uint32_t n : {12u, 24u, 48u}) {
    const auto suite = analysis::quick_suite(n, 11 * n);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      Row r;
      r.family = w.family;
      r.n = w.graph.node_count();
      const std::uint32_t stride = std::max(1u, r.n / 8);
      for (graph::NodeId s = 0; s < r.n; s += stride) {
        const auto run = core::run_arbitrary(w.graph, s, /*coordinator=*/0);
        ++r.sources;
        if (!run.ok) ++r.failures;
        r.T = run.T;
        r.t_min = std::min(r.t_min, run.total_rounds);
        r.t_max = std::max(r.t_max, run.total_rounds);
      }
      return r;
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.failures == 0;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.sources)
          .add(r.failures)
          .add(r.T)
          .add(r.t_min)
          .add(r.t_max);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: B_arb solves acknowledged broadcast for every source; "
              "measured: %s\n",
              all_ok ? "every tried source succeeded with agreed completion"
                     : "FAILURES PRESENT");
  return all_ok ? 0 : 1;
}
