// Experiment E12 — the §1.2 "many consecutive messages" scenario as a
// throughput table: K acknowledged broadcasts over one labeling, the source
// gated on each ack.  Determinism makes the pipeline perfectly periodic, so
// steady-state cost per message equals the first instance's span, and the
// 3-bit labels are amortized over the whole session.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/multi.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E12: multi-message acknowledged sessions (§1.2)\n\n");
  par::ThreadPool pool;
  constexpr std::size_t kMessages = 8;

  struct Row {
    std::string family;
    std::uint32_t n = 0;
    std::uint64_t first_ack = 0, per_msg = 0, total = 0;
    bool ok = false, periodic = false;
  };

  bool all_ok = true;
  TextTable table({"family", "n", "ack#1", "rounds/msg", "total(8 msgs)",
                   "periodic"});
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const auto suite = analysis::quick_suite(n, 17 * n);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      std::vector<std::uint32_t> payloads(kMessages);
      for (std::size_t k = 0; k < kMessages; ++k) {
        payloads[k] = static_cast<std::uint32_t>(k + 1);
      }
      const auto run = core::run_multi_broadcast(w.graph, w.source, payloads);
      Row r;
      r.family = w.family;
      r.n = w.graph.node_count();
      r.ok = run.ok;
      if (run.ok) {
        r.first_ack = run.ack_rounds.front();
        r.per_msg = run.rounds_per_message;
        r.total = run.total_rounds;
        r.periodic = true;
        for (std::size_t k = 1; k < run.ack_rounds.size(); ++k) {
          if (run.ack_rounds[k] - run.ack_rounds[k - 1] != r.per_msg) {
            r.periodic = false;
          }
        }
      }
      return r;
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.ok && r.periodic;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.first_ack)
          .add(r.per_msg)
          .add(r.total)
          .add(r.periodic ? "yes" : "NO");
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: short labels enable multiple executions; acknowledged "
              "broadcast gates each next message.  measured: %s\n",
              all_ok ? "all sessions delivered, perfectly periodic pipeline"
                     : "FAILURE");
  return all_ok ? 0 : 1;
}
