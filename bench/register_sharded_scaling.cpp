// Micro-bench P4 — sharded multi-core stepping: the same dense workloads the
// engine_backends scenario steps single-threaded, resolved by the
// ShardedBitEngine at 1/2/4/8 workers, against a single-thread BitEngine
// reference.  Families:
//  - sharded_step/clique/tN: everyone transmits (all-collide worst case);
//    the acceptance row — at n >= 16384 and 4 threads the sharded backend
//    must be >= 2x faster than BitEngine, asserted only when the host has
//    >= 4 hardware threads (the gate is meaningless on smaller machines;
//    the measured speedup is always recorded).
//  - sharded_scaling/gnp/tN: rotating transmitter slices on a dense gnp
//    graph (deliveries + collisions mixed), correctness cross-checked via
//    tx/rx totals against the reference on every row.
// Sizes below 8192 are raised to 8192: sharding only exists for big rows.
#include "harness.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "sim/backend.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "workloads.hpp"

namespace radiocast::bench {
namespace {

constexpr std::uint64_t kSteps = 16;
constexpr std::uint32_t kMinNodes = 8192;
constexpr std::uint32_t kMaxNodes = 16384;
constexpr std::uint32_t kAcceptanceNodes = 16384;
constexpr double kAcceptanceSpeedup = 2.0;

/// Best-of-`kReps` measurement: engine construction and stepping repeated,
/// keeping the fastest wall time — damps scheduler noise on shared CI
/// runners, where the >= 2x acceptance gate must not flake.
StepResult best_of_steps(const graph::Graph& g, sim::BackendKind backend,
                         std::size_t threads, bool all_transmit) {
  constexpr int kReps = 3;
  StepResult best;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = run_dense_steps(g, backend, threads, all_transmit, kSteps);
    if (rep == 0 || r.wall_ns < best.wall_ns) best = r;
  }
  return best;
}

void scaling_family(Context& ctx, const std::string& family,
                    const graph::Graph& g, bool all_transmit,
                    bool acceptance_family) {
  const auto hw = sim::resolve_thread_count(0);
  const auto reference =
      best_of_steps(g, sim::BackendKind::kBit, 0, all_transmit);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto sharded =
        best_of_steps(g, sim::BackendKind::kSharded, threads, all_transmit);
    const bool agree = sharded.tx_total == reference.tx_total &&
                       sharded.rx_total == reference.rx_total;
    const double speedup =
        sharded.wall_ns ? static_cast<double>(reference.wall_ns) /
                              static_cast<double>(sharded.wall_ns)
                        : 0.0;

    Sample s;
    s.family = "sharded_step/" + family + "/t" + std::to_string(threads);
    s.n = g.node_count();
    s.m = g.edge_count();
    s.rounds = kSteps;
    s.transmissions = sharded.tx_total;
    s.wall_ns = sharded.wall_ns;
    s.ok = agree;
    s.extra = {{"speedup_vs_bit", speedup},
               {"bit_wall_ns", static_cast<double>(reference.wall_ns)},
               {"hw_threads", static_cast<double>(hw)}};
    // Acceptance: >= 2x at 4 workers on the clique at n >= 16384, gated on
    // the host actually having >= 4 hardware threads.
    if (acceptance_family && threads == 4 && hw >= 4 &&
        g.node_count() >= kAcceptanceNodes) {
      s.ok = s.ok && speedup >= kAcceptanceSpeedup;
    }
    ctx.record(std::move(s));
  }
}

void run(Context& ctx) {
  // Raise the ladder into sharded territory and cap the bitmap cost.
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t s : ctx.sizes(kMaxNodes)) {
    const std::uint32_t n = std::max(kMinNodes, s);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  for (const std::uint32_t n : sizes) {
    scaling_family(ctx, "clique", graph::complete(n), /*all_transmit=*/true,
                   /*acceptance_family=*/true);
  }
  for (const std::uint32_t n : sizes) {
    // Dense enough that kAuto would pick a bit backend (avg degree well
    // above n/64 words), sparse enough to keep CSR construction sane.
    Rng rng(n + 3);
    const double p = 1024.0 / n;
    scaling_family(ctx, "gnp", graph::gnp_connected(n, p, rng),
                   /*all_transmit=*/false, /*acceptance_family=*/false);
  }
}

const bool registered = register_scenario(
    {"sharded_scaling",
     "ShardedBitEngine thread scaling vs single-thread BitEngine",
     {"micro", "scaling"},
     &run});

}  // namespace
}  // namespace radiocast::bench
