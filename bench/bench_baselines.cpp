// Experiment E6 — the §1 positioning table: algorithm B (2-bit labels)
// against round-robin (Θ(log n)-bit labels), color-robin over G²
// (Θ(log Δ)-bit labels) and randomized label-free Decay.
//
// Expected shape (the paper's argument, not its absolute numbers):
//  - label bits: B constant, color-robin grows with Δ, round-robin with n;
//  - rounds: B <= 2n-3 always; color-robin wins on bounded-degree deep
//    graphs (C·ecc); round-robin pays ~n per BFS layer; Decay randomizes.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "baselines/baselines.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E6: B vs baselines — rounds and label bits\n\n");
  par::ThreadPool pool;

  struct Row {
    std::string family;
    std::uint32_t n = 0;
    std::uint64_t b_rounds = 0, rr_rounds = 0, cr_rounds = 0, decay_rounds = 0;
    std::uint32_t rr_bits = 0, cr_bits = 0;
    bool ok = false;
  };

  bool all_ok = true;
  TextTable table({"family", "n", "B rounds", "B bits", "color-robin", "bits",
                   "round-robin", "bits", "decay(rand)", "bits"});
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const auto suite = analysis::standard_suite(n, 13 * n);
    const auto rows = par::parallel_map(pool, suite.size(), [&](std::size_t i) {
      const auto& w = suite[i];
      Row r;
      r.family = w.family;
      r.n = w.graph.node_count();
      const auto b = core::run_broadcast(w.graph, w.source);
      const auto rr = baselines::run_round_robin(w.graph, w.source);
      const auto cr = baselines::run_color_robin(w.graph, w.source);
      const auto dk = baselines::run_decay(w.graph, w.source, 1234 + i);
      r.b_rounds = b.completion_round;
      r.rr_rounds = rr.completion_round;
      r.cr_rounds = cr.completion_round;
      r.decay_rounds = dk.completion_round;
      r.rr_bits = rr.label_bits;
      r.cr_bits = cr.label_bits;
      r.ok = b.all_informed && rr.all_informed && cr.all_informed &&
             dk.all_informed;
      return r;
    });
    for (const auto& r : rows) {
      all_ok = all_ok && r.ok;
      table.row()
          .add(r.family)
          .add(r.n)
          .add(r.b_rounds)
          .add(2)
          .add(r.cr_rounds)
          .add(r.cr_bits)
          .add(r.rr_rounds)
          .add(r.rr_bits)
          .add(r.decay_rounds)
          .add(0);
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: O(log n)-bit and O(log Delta)-bit labelings suffice but "
              "2 bits are enough; measured: all schemes completed = %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
