// Micro-bench P3 — engine backend comparison: the same workloads resolved by
// the scalar CSR walk, the bit-parallel dense stepper, and the compiled
// Lemma 2.8 schedule replay.  Two probes:
//  - engine_step/<family>: raw dense round stepping (everyone transmits on a
//    clique; a rotating 1/8 slice elsewhere), scalar vs bit.  The clique row
//    carries the headline assertion: at n >= 4096 the bit backend must be at
//    least 5x faster than scalar.
//  - broadcast/<family>: full algorithm-B executions, scalar engine vs bit
//    engine vs compiled replay, cross-checked for identical results.
#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "core/compiled_schedule.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "sim/backend.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "workloads.hpp"

namespace radiocast::bench {
namespace {

void step_family(Context& ctx, const std::string& family,
                 const graph::Graph& g, bool all_transmit,
                 bool assert_speedup) {
  constexpr std::uint64_t kSteps = 16;
  const auto scalar =
      run_dense_steps(g, sim::BackendKind::kScalar, 0, all_transmit, kSteps);
  const auto bit =
      run_dense_steps(g, sim::BackendKind::kBit, 0, all_transmit, kSteps);
  const bool agree =
      scalar.tx_total == bit.tx_total && scalar.rx_total == bit.rx_total;
  const double speedup = bit.wall_ns
                             ? static_cast<double>(scalar.wall_ns) /
                                   static_cast<double>(bit.wall_ns)
                             : 0.0;

  for (const auto* kind : {"scalar", "bit"}) {
    const auto& r = std::string(kind) == "scalar" ? scalar : bit;
    Sample s;
    s.family = "engine_step/" + family + "/" + kind;
    s.n = g.node_count();
    s.m = g.edge_count();
    s.rounds = kSteps;
    s.transmissions = r.tx_total;
    s.wall_ns = r.wall_ns;
    s.ok = agree;
    s.extra = {{"rx_total", static_cast<double>(r.rx_total)}};
    if (std::string(kind) == "bit") {
      s.extra.emplace_back("speedup_vs_scalar", speedup);
      // Headline acceptance: dense stepping must be >= 5x faster bit-parallel
      // once rows span >= 64 words.
      if (assert_speedup && g.node_count() >= 4096) {
        s.ok = s.ok && speedup >= 5.0;
      }
    }
    ctx.record(std::move(s));
  }
}

void broadcast_family(Context& ctx, const std::string& family,
                      const graph::Graph& g) {
  struct Variant {
    const char* name;
    core::BroadcastRun run;
    std::uint64_t wall_ns = 0;
  };
  Variant variants[3] = {
      {"scalar", {}, 0}, {"bit", {}, 0}, {"compiled", {}, 0}};

  core::RunOptions opt;
  opt.threads = ctx.threads();
  opt.backend = sim::BackendKind::kScalar;
  variants[0].wall_ns =
      time_ns([&] { variants[0].run = core::run_broadcast(g, 0, opt); });
  opt.backend = sim::BackendKind::kBit;
  variants[1].wall_ns =
      time_ns([&] { variants[1].run = core::run_broadcast(g, 0, opt); });
  opt.backend = ctx.backend();
  variants[2].wall_ns = time_ns(
      [&] { variants[2].run = core::run_broadcast_compiled(g, 0, opt); });

  const auto& ref = variants[0].run;
  bool agree = ref.all_informed;
  for (const auto& v : variants) {
    agree = agree && v.run.all_informed &&
            v.run.completion_round == ref.completion_round &&
            v.run.max_node_tx == ref.max_node_tx && v.run.ell == ref.ell;
  }

  for (const auto& v : variants) {
    Sample s;
    s.family = "broadcast/" + family + "/" + v.name;
    s.n = g.node_count();
    s.m = g.edge_count();
    s.rounds = v.run.completion_round;
    s.wall_ns = v.wall_ns;
    s.ok = agree;
    ctx.record(std::move(s));
  }
}

void run(Context& ctx) {
  // Raw dense stepping: clique (everyone transmits — the acceptance family),
  // dense gnp and sparse grid with rotating slices (the crossover contrast).
  for (const std::uint32_t n : ctx.sizes(8192)) {
    step_family(ctx, "clique", graph::complete(n), /*all_transmit=*/true,
                /*assert_speedup=*/true);
  }
  for (const std::uint32_t n : ctx.sizes(4096)) {
    Rng rng(n);
    step_family(ctx, "gnp", graph::gnp_connected(n, 0.5, rng),
                /*all_transmit=*/false, /*assert_speedup=*/false);
  }
  for (const std::uint32_t n : ctx.sizes(4096)) {
    const auto side = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n))));
    step_family(ctx, "grid", graph::grid(side, side), /*all_transmit=*/false,
                /*assert_speedup=*/false);
  }

  // Full algorithm-B executions: scalar vs bit vs compiled replay.
  for (const std::uint32_t n : ctx.sizes(4096)) {
    Rng rng(n + 1);
    broadcast_family(ctx, "gnp", graph::gnp_connected(n, 0.3, rng));
    broadcast_family(ctx, "clique", graph::complete(n));
    const auto side = std::max<std::uint32_t>(
        2, static_cast<std::uint32_t>(std::sqrt(static_cast<double>(n))));
    broadcast_family(ctx, "grid", graph::grid(side, side));
  }
}

const bool registered = register_scenario(
    {"engine_backends",
     "scalar vs bit-parallel vs compiled-schedule engine backends",
     {"smoke", "micro"},
     &run});

}  // namespace
}  // namespace radiocast::bench
