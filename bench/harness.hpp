/// \file harness.hpp
/// \brief The unified radiocast_bench harness: a scenario registry, a shared
///        CLI (--filter/--repeat/--sizes/--json), batched sweeps on the
///        project thread pool, and machine-readable JSON output.
///
/// Each scenario lives in one register_<name>.cpp translation unit that calls
/// `register_scenario` from a namespace-scope initializer.  The harness runs
/// the selected scenarios, collects `Sample` records (one per measured
/// (graph, run) point), prints a human table, and optionally emits the full
/// sample set as JSON — the repo's perf trajectory format.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/config.hpp"
#include "sim/backend.hpp"
#include "sim/dispatch.hpp"
#include "sim/simd.hpp"

namespace radiocast::bench {

/// One measured data point.  `rounds`/`transmissions` are simulated-model
/// quantities; `wall_ns` is host wall time for the work that produced the
/// point.  Scenario-specific metrics ride in `extra` as key/value pairs.
struct Sample {
  std::string family;   ///< sub-case within the scenario (graph family, ...)
  std::uint32_t n = 0;  ///< node count of the instance
  std::uint64_t m = 0;  ///< edge count of the instance
  std::uint64_t rounds = 0;         ///< simulated rounds to completion
  std::uint64_t transmissions = 0;  ///< total messages sent in the run
  std::uint64_t wall_ns = 0;        ///< host wall time for this point
  bool ok = true;                   ///< scenario invariant held for this point
  int rep = 0;                      ///< repetition index ([0, --repeat))
  std::vector<std::pair<std::string, double>> extra;  ///< scenario metrics
};

/// Wall-clock helper: returns the elapsed nanoseconds of `fn()`.
template <typename Fn>
std::uint64_t time_ns(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  std::forward<Fn>(fn)();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Per-invocation state handed to a scenario: the shared pool, the requested
/// size ladder, and a thread-safe sample sink.
class Context {
 public:
  Context(par::ThreadPool& pool, std::vector<std::uint32_t> sizes, int repeat,
          int rep, runtime::ExecutionConfig exec = {})
      : pool_(pool),
        sizes_(std::move(sizes)),
        repeat_(repeat),
        rep_(rep),
        exec_(exec) {}

  par::ThreadPool& pool() { return pool_; }

  /// The full --backend/--dispatch/--threads selection for engine-driving
  /// scenarios.
  const runtime::ExecutionConfig& exec() const noexcept { return exec_; }

  /// The --backend selection for engine-driving scenarios (default kAuto).
  sim::BackendKind backend() const noexcept { return exec_.backend; }

  /// The --dispatch selection for engine-driving scenarios (default kAuto).
  sim::DispatchKind dispatch() const noexcept { return exec_.dispatch; }

  /// The --threads request, for scenarios that construct sharded engines
  /// (0 = hardware concurrency).  The sweep pool uses the same value.
  std::size_t threads() const noexcept { return exec_.threads; }

  /// The --sizes ladder (default 16,64,256).  Scenarios with an intrinsic
  /// instance-size cap should clamp via `sizes(cap)`.
  const std::vector<std::uint32_t>& sizes() const { return sizes_; }

  /// The ladder with every entry clamped to `cap` (deduplicated, ordered).
  std::vector<std::uint32_t> sizes(std::uint32_t cap) const;

  int repeat() const { return repeat_; }  ///< total repetitions requested
  int rep() const { return rep_; }        ///< current repetition index

  /// Thread-safe: scenarios may record from pool workers.
  void record(Sample s);

  std::vector<Sample>& samples() { return samples_; }

 private:
  par::ThreadPool& pool_;
  std::vector<std::uint32_t> sizes_;
  int repeat_;
  int rep_;
  runtime::ExecutionConfig exec_;
  std::mutex mu_;
  std::vector<Sample> samples_;
};

/// A registered benchmark scenario.
struct Scenario {
  std::string name;         ///< unique id, e.g. "broadcast_time"
  std::string description;  ///< one line for --list
  std::vector<std::string> tags;  ///< e.g. {"smoke", "experiment"}
  void (*run)(Context&) = nullptr;
};

/// Registers a scenario at static-initialization time; returns true so the
/// call can seed a namespace-scope constant.  Duplicate names are rejected
/// (first registration wins).
bool register_scenario(Scenario s);

/// All registered scenarios, sorted by name.
std::vector<Scenario> registry();

/// Selection: `filter` is a comma-separated list of terms; a scenario is
/// selected when any term is a substring of its name or exactly matches one
/// of its tags.  An empty filter selects everything.
bool matches_filter(const Scenario& s, const std::string& filter);
std::vector<Scenario> select(const std::string& filter);

/// Parsed command line.  The execution knobs (--backend/--dispatch/
/// --threads) land in `exec` via the shared runtime flag parser, so the
/// bench accepts exactly the values (and prints exactly the errors) that
/// `radiocast_cli` does.
struct Options {
  std::string filter;                        ///< --filter
  int repeat = 1;                            ///< --repeat
  std::vector<std::uint32_t> sizes = {16, 64, 256};  ///< --sizes
  std::string json_path;                     ///< --json (empty = no JSON)
  runtime::ExecutionConfig exec;             ///< --backend/--dispatch/--threads
  sim::simd::Isa isa = sim::simd::Isa::kAuto;  ///< --isa (kernel ISA force)
  bool list = false;                         ///< --list
  bool help = false;                         ///< --help
  std::string error;                         ///< non-empty on a parse error
};

Options parse_args(int argc, const char* const* argv);

/// One scenario's execution record (all repetitions).
struct ScenarioResult {
  Scenario scenario;
  std::vector<Sample> samples;
  std::uint64_t wall_ns = 0;  ///< total wall time across repetitions
  bool ok = true;             ///< conjunction of sample.ok
};

/// Runs every selected scenario `opt.repeat` times on a shared pool.
std::vector<ScenarioResult> run_scenarios(const std::vector<Scenario>& chosen,
                                          const Options& opt);

/// Serializes results to the radiocast-bench/1 JSON document.
std::string to_json(const std::vector<ScenarioResult>& results,
                    const Options& opt);

/// JSON string escaping (exposed for tests).
std::string json_escape(const std::string& s);

/// Full CLI entry point (parse, run, report, emit JSON).  Returns the
/// process exit code: 0 iff every selected scenario passed.
int run_main(int argc, const char* const* argv, std::ostream& out);

}  // namespace radiocast::bench
