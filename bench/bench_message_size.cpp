// Experiment E10 — message-size accounting: algorithm B uses constant-size
// control information; B_ack appends a Θ(log n)-bit round counter (the paper
// notes this and leaves constant-size acknowledged broadcast open).
#include <cstdio>

#include "analysis/metrics.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E10: control bits per message vs n\n\n");
  bool all_ok = true;

  TextTable table({"n (path)", "B max ctrl bits", "B_ack max stamp",
                   "B_ack max ctrl bits", "ceil(log2(3n))"});
  for (const std::uint32_t n : {8u, 32u, 128u, 512u, 2048u}) {
    const auto g = graph::path(n);

    // Algorithm B: walk the full trace and charge every message.
    const auto lab = core::label_broadcast(g, 0);
    sim::Engine eng_b(g, core::make_broadcast_protocols(lab, 1),
                      {sim::TraceLevel::kFull});
    eng_b.run_until([](const sim::Engine& e) { return e.all_informed(); },
                    4ull * n + 8);
    std::uint32_t b_bits = 0;
    for (const auto& rec : eng_b.trace().rounds()) {
      for (const auto& [v, msg] : rec.transmissions) {
        b_bits = std::max(b_bits, analysis::control_bits(msg, false));
      }
    }

    const auto ack = core::run_acknowledged(g, 0);
    const sim::Message worst{sim::MsgKind::kAck, 0, 0, ack.max_stamp};
    const auto ack_bits = analysis::control_bits(worst, false);

    std::uint32_t log_bound = 0;
    while ((1ull << log_bound) < 3ull * n) ++log_bound;

    all_ok = all_ok && b_bits <= 3 && ack_bits <= 3 + log_bound + 1 &&
             ack.all_informed;
    table.row().add(n).add(b_bits).add(ack.max_stamp).add(ack_bits).add(log_bound);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: B needs O(1) control bits, B_ack O(log n); measured: B "
              "constant (kind tag only), B_ack stamp grows as log2(3n): %s\n",
              all_ok ? "OK" : "VIOLATED");
  return all_ok ? 0 : 1;
}
