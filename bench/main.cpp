#include <iostream>

#include "harness.hpp"

int main(int argc, char** argv) {
  return radiocast::bench::run_main(argc, argv, std::cout);
}
