// Experiment F1 — regenerates the paper's Figure 1: the execution of
// algorithm B on the 13-node example, printing each node's 2-bit label, its
// transmit rounds and its reception rounds, and checking them against the
// figure's published values.
//
// The figure's parenthesized reception lists omit three receptions that are
// *forced* by its transmit sets (see EXPERIMENTS.md); we print both the full
// ground truth and the figure-convention view (first µ reception + "stay"
// receptions that trigger a retransmission).
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/table.hpp"

namespace {

std::string fmt_rounds(const std::vector<std::uint64_t>& rounds) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < rounds.size(); ++i) os << (i ? "," : "") << rounds[i];
  os << "}";
  return os.str();
}

}  // namespace

int main() {
  using namespace radiocast;

  const graph::Graph g = graph::figure1();
  const graph::NodeId source = 0;
  const core::Labeling labeling = core::label_broadcast(g, source);

  sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                     {sim::TraceLevel::kFull});
  engine.run_until([](const sim::Engine& e) { return e.all_informed(); }, 64);
  const auto& trace = engine.trace();

  // Published figure data, keyed by our reconstruction's node ids
  // (s=0 A=1 C=2 B=3 D=4 E=5 F=6 G=7 P_C..P_F=8..11 H=12).
  const std::map<graph::NodeId, std::string> figure_label = {
      {0, "10"}, {1, "10"}, {2, "10"}, {3, "10"}, {4, "10"}, {5, "11"},
      {6, "11"}, {7, "01"}, {8, "00"}, {9, "00"}, {10, "00"}, {11, "00"},
      {12, "00"}};
  const std::map<graph::NodeId, std::vector<std::uint64_t>> figure_tx = {
      {0, {1}},    {1, {3}},    {2, {3, 5}}, {3, {3, 5, 7}}, {4, {5}},
      {5, {4, 5}}, {6, {4, 5}}, {7, {6}},    {8, {}},        {9, {}},
      {10, {}},    {11, {}},    {12, {}}};
  const std::map<graph::NodeId, std::uint64_t> figure_first_rx = {
      {1, 1}, {2, 1}, {3, 1}, {4, 3},  {5, 3},  {6, 3},
      {7, 5}, {8, 5}, {9, 5}, {10, 5}, {11, 5}, {12, 7}};

  TextTable table({"node", "role", "label(fig)", "transmits(fig)", "receives",
                   "first-u(fig)"});
  const char* role[] = {"s",   "A",   "C",   "B",   "D",   "E",  "F",
                        "G",   "P_C", "P_D", "P_E", "P_F", "H"};
  int mismatches = 0;
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    const auto tx = trace.transmit_rounds(v);
    const auto label = labeling.labels[v].to_string();
    const bool label_ok = label == figure_label.at(v);
    const bool tx_ok = tx == figure_tx.at(v);
    std::uint64_t first_rx = 0;
    if (const auto r = trace.first_reception(v, sim::MsgKind::kData)) first_rx = *r;
    const bool rx_ok = (v == source) ? first_rx == 7  // s hears B's round-7 echo
                                     : first_rx == figure_first_rx.at(v);
    mismatches += (label_ok && tx_ok && rx_ok) ? 0 : 1;

    std::ostringstream rx_all;
    for (const auto& [t, msg] : trace.deliveries_at(v)) {
      rx_all << t << (msg.kind == sim::MsgKind::kStay ? "s" : "") << " ";
    }
    table.row()
        .add(v)
        .add(role[v])
        .add(label + (label_ok ? "(=)" : "(!)"))
        .add(fmt_rounds(tx) + (tx_ok ? "(=)" : "(!)"))
        .add(rx_all.str())
        .add(std::to_string(first_rx) + (rx_ok ? "(=)" : "(!)"));
  }

  std::printf("Experiment F1: Figure 1 reproduction (n=13, source s=0)\n\n%s\n",
              table.str().c_str());
  const auto verdict = core::verify_lemma_2_8(g, labeling, trace);
  std::printf("completion round: %llu (figure: 7; bound 2n-3 = 23)\n",
              static_cast<unsigned long long>(engine.last_first_data_reception()));
  std::printf("Lemma 2.8 trace check: %s\n", verdict.empty() ? "OK" : verdict.c_str());
  std::printf("figure agreement: %s (%d mismatching nodes)\n",
              mismatches == 0 ? "EXACT" : "MISMATCH", mismatches);
  std::printf("forced receptions the figure omits: A hears 'stay'@6, "
              "E hears u@7, G hears u@7 (see EXPERIMENTS.md)\n");
  return (mismatches == 0 && verdict.empty()) ? 0 : 1;
}
