// Figure F1 — regenerates the paper's Figure 1: the execution of algorithm B
// on the 13-node example, checked against the figure's published labels,
// transmit rounds and first receptions, plus the Lemma 2.8 trace verifier.
#include "harness.hpp"

#include <map>

#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  const graph::Graph g = graph::figure1();
  const graph::NodeId source = 0;

  Sample s;
  s.family = "figure1";
  s.n = g.node_count();
  s.m = g.edge_count();

  int mismatches = 0;
  bool lemma_ok = false;
  std::uint64_t completion = 0, transmissions = 0;
  s.wall_ns = time_ns([&] {
    const core::Labeling labeling = core::label_broadcast(g, source);
    sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                       {sim::TraceLevel::kFull});
    engine.run_until([](const sim::Engine& e) { return e.all_informed(); }, 64);
    const auto& trace = engine.trace();
    completion = engine.last_first_data_reception();

    // Published figure data, keyed by the reconstruction's node ids
    // (s=0 A=1 C=2 B=3 D=4 E=5 F=6 G=7 P_C..P_F=8..11 H=12).
    const std::map<graph::NodeId, std::string> figure_label = {
        {0, "10"}, {1, "10"}, {2, "10"}, {3, "10"}, {4, "10"}, {5, "11"},
        {6, "11"}, {7, "01"}, {8, "00"}, {9, "00"}, {10, "00"}, {11, "00"},
        {12, "00"}};
    const std::map<graph::NodeId, std::vector<std::uint64_t>> figure_tx = {
        {0, {1}},    {1, {3}},    {2, {3, 5}}, {3, {3, 5, 7}}, {4, {5}},
        {5, {4, 5}}, {6, {4, 5}}, {7, {6}},    {8, {}},        {9, {}},
        {10, {}},    {11, {}},    {12, {}}};
    const std::map<graph::NodeId, std::uint64_t> figure_first_rx = {
        {1, 1}, {2, 1}, {3, 1}, {4, 3},  {5, 3},  {6, 3},
        {7, 5}, {8, 5}, {9, 5}, {10, 5}, {11, 5}, {12, 7}};

    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      const auto tx = trace.transmit_rounds(v);
      transmissions += tx.size();
      const bool label_ok =
          labeling.labels[v].to_string() == figure_label.at(v);
      const bool tx_ok = tx == figure_tx.at(v);
      std::uint64_t first_rx = 0;
      if (const auto r = trace.first_reception(v, sim::MsgKind::kData)) {
        first_rx = *r;
      }
      const bool rx_ok = (v == source) ? first_rx == 7  // s hears B's echo
                                       : first_rx == figure_first_rx.at(v);
      mismatches += (label_ok && tx_ok && rx_ok) ? 0 : 1;
    }
    lemma_ok = core::verify_lemma_2_8(g, labeling, trace).empty();
  });

  s.rounds = completion;
  s.transmissions = transmissions;
  s.ok = mismatches == 0 && lemma_ok;
  s.extra = {{"mismatches", static_cast<double>(mismatches)},
             {"lemma_2_8", lemma_ok ? 1.0 : 0.0}};
  ctx.record(std::move(s));
}

const bool registered = register_scenario(
    {"fig1",
     "Figure 1 reproduction: 13-node execution vs published labels/rounds",
     {"smoke", "figure"},
     &run});

}  // namespace
}  // namespace radiocast::bench
