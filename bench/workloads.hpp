/// \file workloads.hpp
/// \brief Synthetic protocol workloads shared by engine-stepping scenarios.
#pragma once

#include <optional>

#include "sim/protocol.hpp"

namespace radiocast::bench {

/// Transmits every round — the dense worst case (all-collide on a clique).
/// Shared by the sim_throughput and engine_backends stepping families so
/// both measure the same workload.
class Chatter final : public sim::Protocol {
 public:
  std::optional<sim::Message> on_round() override {
    return sim::Message{sim::MsgKind::kData, 0, 0, std::nullopt};
  }
  void on_hear(const sim::Message&) override {}
  bool informed() const override { return true; }
};

}  // namespace radiocast::bench
