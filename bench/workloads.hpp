/// \file workloads.hpp
/// \brief Synthetic protocol workloads shared by engine-stepping scenarios.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "harness.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace radiocast::bench {

/// Transmits every round — the dense worst case (all-collide on a clique).
/// Shared by the sim_throughput and engine_backends stepping families so
/// both measure the same workload.
class Chatter final : public sim::Protocol {
 public:
  std::optional<sim::Message> on_round() override {
    return sim::Message{sim::MsgKind::kData, 0, 0, std::nullopt};
  }
  void on_hear(const sim::Message&) override {}
  bool informed() const override { return true; }
};

/// Transmits on a rotating 1/8 slice of the id space: rounds mix deliveries
/// and collisions, so both resolution paths are exercised.  Shared by the
/// engine_backends and sharded_scaling stepping families.
class SliceTalker final : public sim::Protocol {
 public:
  explicit SliceTalker(std::uint32_t id) : id_(id) {}
  std::optional<sim::Message> on_round() override {
    ++round_;
    if ((id_ + round_) % 8 == 0) {
      return sim::Message{sim::MsgKind::kData, 0, id_, std::nullopt};
    }
    return std::nullopt;
  }
  void on_hear(const sim::Message&) override { ++heard_; }
  bool informed() const override { return true; }
  std::uint64_t heard() const { return heard_; }

 private:
  std::uint32_t id_ = 0;
  std::uint64_t round_ = 0;
  std::uint64_t heard_ = 0;
};

/// Outcome of stepping a dense workload for a fixed number of rounds.
struct StepResult {
  std::uint64_t wall_ns = 0;
  std::uint64_t tx_total = 0;
  std::uint64_t rx_total = 0;
};

/// Steps `Chatter` (all_transmit) or `SliceTalker` protocols for `steps`
/// rounds on the given backend and reports wall time plus tx/rx totals —
/// the common measurement of the engine_backends, sharded_scaling, and
/// dispatch_scaling stepping families.  Chatter/SliceTalker provide no
/// activity hints, so `dispatch` kAuto resolves to the scan.
inline StepResult run_dense_steps(
    const graph::Graph& g, sim::BackendKind backend, std::size_t threads,
    bool all_transmit, std::uint64_t steps,
    sim::DispatchKind dispatch = sim::DispatchKind::kAuto) {
  const auto n = g.node_count();
  std::vector<std::unique_ptr<sim::Protocol>> protocols;
  protocols.reserve(n);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (all_transmit) {
      protocols.push_back(std::make_unique<Chatter>());
    } else {
      protocols.push_back(std::make_unique<SliceTalker>(v));
    }
  }
  sim::Engine engine(
      g, std::move(protocols),
      {sim::TraceLevel::kCounters, false, backend, threads, dispatch});
  StepResult out;
  out.wall_ns = time_ns([&] {
    for (std::uint64_t i = 0; i < steps; ++i) engine.step();
  });
  out.tx_total = engine.transmissions_total();
  for (std::uint32_t v = 0; v < n; ++v) out.rx_total += engine.rx_count(v);
  return out;
}

}  // namespace radiocast::bench
