// P1 — google-benchmark micro-bench: cost of the centralized preprocessing
// (stage-set construction + labeling) as a function of n and density.  The
// labeling is the part of the system the paper's "central monitor" runs once
// per deployment, so its scaling matters for the IoT scenario.
#include <benchmark/benchmark.h>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace {

using namespace radiocast;

void BM_StageSets_Path(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::path(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_stage_sets(g, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_StageSets_Path)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_StageSets_Grid(benchmark::State& state) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  const auto g = graph::grid(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_stage_sets(g, 0));
  }
  state.SetComplexityN(side * side);
}
BENCHMARK(BM_StageSets_Grid)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_StageSets_Gnp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(n);
  const auto g = graph::gnp_connected(n, 8.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_stage_sets(g, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_StageSets_Gnp)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_LabelBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(n ^ 0xABCD);
  const auto g = graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::label_broadcast(g, 0));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LabelBroadcast)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

void BM_LabelAcknowledged(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(n ^ 0x1234);
  const auto g = graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::label_acknowledged(g, 0));
  }
}
BENCHMARK(BM_LabelAcknowledged)->RangeMultiplier(4)->Range(64, 4096);

void BM_LabelArbitrary(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(n ^ 0x5678);
  const auto g = graph::gnp_connected(n, 6.0 / n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::label_arbitrary(g, 0));
  }
}
BENCHMARK(BM_LabelArbitrary)->RangeMultiplier(4)->Range(64, 4096);

void BM_DomPolicy(benchmark::State& state) {
  const auto policy = core::kAllDomPolicies[static_cast<std::size_t>(state.range(0))];
  Rng rng(42);
  const auto g = graph::gnp_connected(2048, 6.0 / 2048, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_stage_sets(g, 0, policy, 1));
  }
  state.SetLabel(core::to_string(policy));
}
BENCHMARK(BM_DomPolicy)->DenseRange(0, 6);

}  // namespace

BENCHMARK_MAIN();
