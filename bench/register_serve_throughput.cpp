// Micro-bench P6 — the serve daemon: an in-process `serve::Server` under
// real socket load.  Families:
//  - serve/multi-client: several concurrent Client threads stream spec
//    batches at a warm server; reports specs/sec plus per-batch p50/p99
//    latency (the interleave cost of batch-granularity serialization).
//    Recorded, not gated (latency is host-dependent).
//  - serve/saturating/{serial,pipelined}: the pipelined-executor acceptance
//    row.  8 clients fire small overhead-dominated batches at the same
//    host twice — once at a serial server (--pipeline-depth 0) and once at
//    the staged pipeline — and the pipelined run must clear >= 2x
//    specs/sec whenever the host has >= 4 hardware threads (self-skipped
//    below that, like the other parallel gates).
//  - serve/restart/{cold,warm}: the acceptance row.  A server with a plan
//    store answers a compiled clique batch (b/ack/arb, several sources,
//    n >= 4096), is torn down, and a *fresh* server over the same store
//    directory answers the identical batch.  The warm restart must be
//    >= 3x faster, report zero plan/compile constructions, and reproduce
//    the cold results line for line.
#include "harness.hpp"

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "analysis/experiments.hpp"
#include "runtime/plan_store.hpp"
#include "runtime/sweep.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace radiocast::bench {
namespace {

constexpr std::uint32_t kCliqueMinNodes = 4096;
constexpr std::uint32_t kCliqueMaxNodes = 8192;
constexpr double kAcceptanceSpeedup = 3.0;
constexpr double kPipelineSpeedup = 2.0;
constexpr unsigned kPipelineGateCores = 4;

std::vector<runtime::ExperimentSpec> client_specs(std::uint32_t n) {
  std::vector<runtime::ExperimentSpec> specs;
  for (const char* scheme : {"b", "ack", "arb", "round-robin"}) {
    runtime::ExperimentSpec spec;
    spec.scheme = scheme;
    spec.graph.generator = "grid:4:" + std::to_string(std::max(2u, n / 4));
    spec.label = std::string("serve/") + scheme;
    specs.push_back(std::move(spec));
  }
  return specs;
}

double percentile(std::vector<std::uint64_t> sorted_ns, double p) {
  if (sorted_ns.empty()) return 0.0;
  std::sort(sorted_ns.begin(), sorted_ns.end());
  const std::size_t idx = std::min(
      sorted_ns.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_ns.size())));
  return static_cast<double>(sorted_ns[idx]) / 1e6;  // ms
}

/// Concurrent clients streaming batches at one warm server.
void multi_client_family(Context& ctx, std::uint32_t n) {
  const auto specs = client_specs(n);
  runtime::SweepRunner runner(ctx.pool());
  serve::Server server(runner, serve::ServerOptions{});
  server.start();

  // Warm the cache so the measured regime is the daemon's steady state.
  {
    serve::Client warmup;
    if (!warmup.connect_tcp(server.tcp_port())) return;
    if (!warmup.run_batch(specs).ok) return;
  }

  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 8;
  std::vector<std::vector<std::uint64_t>> latencies(kClients);
  std::vector<bool> client_ok(kClients, true);
  const std::uint64_t wall_ns = time_ns([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        serve::Client client;
        if (!client.connect_tcp(server.tcp_port())) {
          client_ok[c] = false;
          return;
        }
        for (int b = 0; b < kBatchesPerClient; ++b) {
          serve::BatchOutcome outcome;
          latencies[c].push_back(time_ns([&] {
            outcome = client.run_batch(specs, static_cast<std::uint64_t>(c));
          }));
          if (!outcome.ok || outcome.results.size() != specs.size()) {
            client_ok[c] = false;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  server.stop();

  std::vector<std::uint64_t> all;
  bool ok = true;
  for (int c = 0; c < kClients; ++c) {
    ok = ok && client_ok[c];
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
  }
  const std::size_t total_specs = all.size() * specs.size();
  const double secs = static_cast<double>(wall_ns) / 1e9;

  Sample s;
  s.family = "serve/multi-client";
  s.n = n;
  s.rounds = total_specs;
  s.wall_ns = wall_ns;
  s.ok = ok;
  s.extra = {
      {"specs_per_sec",
       secs > 0 ? static_cast<double>(total_specs) / secs : 0.0},
      {"batch_p50_ms", percentile(all, 0.50)},
      {"batch_p99_ms", percentile(all, 0.99)},
      {"clients", static_cast<double>(kClients)},
  };
  ctx.record(std::move(s));
}

struct SaturatingRun {
  std::uint64_t wall_ns = 0;
  bool ok = false;
  serve::PipelineStats pipeline;
};

/// One server lifetime under saturating load: `clients` threads each fire
/// `batches` copies of `specs` as fast as the daemon answers them.  The
/// cache is warmed first so the measured regime is pure serving overhead.
SaturatingRun saturate_once(Context& ctx, const serve::ServerOptions& options,
                            const std::vector<runtime::ExperimentSpec>& specs,
                            int clients, int batches) {
  SaturatingRun out;
  runtime::SweepRunner runner(ctx.pool());
  serve::Server server(runner, options);
  server.start();
  {
    serve::Client warmup;
    if (!warmup.connect_tcp(server.tcp_port()) ||
        !warmup.run_batch(specs).ok) {
      server.stop();
      return out;
    }
  }

  std::vector<char> client_ok(static_cast<std::size_t>(clients), 1);
  out.wall_ns = time_ns([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::Client client;
        if (!client.connect_tcp(server.tcp_port())) {
          client_ok[static_cast<std::size_t>(c)] = 0;
          return;
        }
        for (int b = 0; b < batches; ++b) {
          const auto outcome =
              client.run_batch(specs, static_cast<std::uint64_t>(b));
          if (!outcome.ok || outcome.results.size() != specs.size()) {
            client_ok[static_cast<std::size_t>(c)] = 0;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  });
  out.pipeline = server.pipeline_stats();
  server.stop();
  out.ok = std::all_of(client_ok.begin(), client_ok.end(),
                       [](char ok) { return ok != 0; });
  return out;
}

/// Serial vs pipelined under 8-client saturating load: the >= 2x gate.
void saturating_family(Context& ctx, std::uint32_t n) {
  // Two tiny specs per batch: the per-batch-overhead-dominated regime
  // where admission coalescing and stage overlap are the whole story.
  std::vector<runtime::ExperimentSpec> specs;
  for (const char* scheme : {"b", "ack"}) {
    runtime::ExperimentSpec spec;
    spec.scheme = scheme;
    spec.graph.generator = "path:" + std::to_string(std::max(8u, n / 64));
    spec.label = std::string("saturating/") + scheme;
    specs.push_back(std::move(spec));
  }
  constexpr int kClients = 8;
  constexpr int kBatchesPerClient = 16;

  serve::ServerOptions serial_options;
  serial_options.executor.pipeline_depth = 0;
  const SaturatingRun serial =
      saturate_once(ctx, serial_options, specs, kClients, kBatchesPerClient);
  const SaturatingRun pipelined = saturate_once(
      ctx, serve::ServerOptions{}, specs, kClients, kBatchesPerClient);

  const double speedup =
      pipelined.wall_ns != 0 ? static_cast<double>(serial.wall_ns) /
                                   static_cast<double>(pipelined.wall_ns)
                             : 0.0;
  const std::size_t total_specs =
      specs.size() * static_cast<std::size_t>(kClients * kBatchesPerClient);
  const bool gated =
      std::thread::hardware_concurrency() >= kPipelineGateCores;
  for (const auto* run : {&serial, &pipelined}) {
    Sample s;
    s.family = std::string("serve/saturating/") +
               (run == &serial ? "serial" : "pipelined");
    s.n = n;
    s.rounds = total_specs;
    s.wall_ns = run->wall_ns;
    s.ok = serial.ok && pipelined.ok;
    const double secs = static_cast<double>(run->wall_ns) / 1e9;
    s.extra = {
        {"specs_per_sec",
         secs > 0 ? static_cast<double>(total_specs) / secs : 0.0},
        {"pipeline_speedup", speedup},
        {"clients", static_cast<double>(kClients)},
        {"coalesced_batches",
         static_cast<double>(run->pipeline.coalesced_batches)},
        {"submissions", static_cast<double>(run->pipeline.submissions)},
    };
    if (run == &pipelined && gated) {
      s.ok = s.ok && speedup >= kPipelineSpeedup;
    }
    ctx.record(std::move(s));
  }
}

struct ServedBatch {
  std::uint64_t wall_ns = 0;
  bool ok = false;
  std::vector<std::string> lines;
  std::uint64_t plan_misses = 0;
  std::uint64_t compiled_misses = 0;
  std::uint64_t store_hits = 0;
};

/// One daemon lifetime: start a server over `dir`, run the batch, stop.
ServedBatch serve_once(Context& ctx, const std::string& dir,
                       const std::vector<runtime::ExperimentSpec>& specs) {
  ServedBatch out;
  runtime::PlanStore store(dir);
  runtime::SweepRunner runner(ctx.pool());
  runner.attach_store(&store);
  serve::Server server(runner, serve::ServerOptions{});
  server.start();
  serve::Client client;
  if (!client.connect_tcp(server.tcp_port())) return out;
  serve::BatchOutcome outcome;
  out.wall_ns = time_ns([&] { outcome = client.run_batch(specs); });
  out.ok = outcome.ok && outcome.results.size() == specs.size();
  if (out.ok) {
    out.lines = analysis::format_sweep(specs, outcome.results);
    const auto& stats = outcome.done.get("stats");
    out.plan_misses = stats.get("plan_misses").as_uint();
    out.compiled_misses = stats.get("compiled_misses").as_uint();
    out.store_hits = stats.get("plan_store_hits").as_uint() +
                     stats.get("compiled_store_hits").as_uint();
  }
  server.stop();
  return out;
}

/// Kill-and-restart on the compiled clique: the acceptance comparison.
void restart_family(Context& ctx, std::uint32_t n) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("radiocast_serve_bench_" + std::to_string(n)))
          .string();
  std::filesystem::remove_all(dir);

  std::vector<runtime::ExperimentSpec> specs;
  for (const char* scheme : {"b", "ack", "arb"}) {
    for (graph::NodeId source = 0; source < 16; ++source) {
      runtime::ExperimentSpec spec;
      spec.scheme = scheme;
      spec.graph.generator = "complete:" + std::to_string(n);
      spec.source = source;
      spec.config = ctx.exec();
      spec.config.compiled = true;
      spec.label = std::string("clique/") + scheme;
      specs.push_back(std::move(spec));
    }
  }

  const ServedBatch cold = serve_once(ctx, dir, specs);
  const ServedBatch warm = serve_once(ctx, dir, specs);
  std::filesystem::remove_all(dir);

  const bool agree = cold.ok && warm.ok && cold.lines == warm.lines;
  // The restarted daemon must answer purely from the store.
  const bool warm_from_store = warm.plan_misses == 0 &&
                               warm.compiled_misses == 0 &&
                               warm.store_hits > 0;
  const double speedup = warm.wall_ns ? static_cast<double>(cold.wall_ns) /
                                            static_cast<double>(warm.wall_ns)
                                      : 0.0;
  for (const auto* run : {&cold, &warm}) {
    Sample s;
    s.family = std::string("serve/restart/") + (run == &cold ? "cold" : "warm");
    s.n = n;
    s.m = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    s.rounds = specs.size();
    s.wall_ns = run->wall_ns;
    s.ok = agree;
    const double secs = static_cast<double>(run->wall_ns) / 1e9;
    s.extra = {
        {"specs_per_sec",
         secs > 0 ? static_cast<double>(specs.size()) / secs : 0.0},
        {"warm_speedup", speedup},
        {"plan_misses", static_cast<double>(run->plan_misses)},
        {"store_hits", static_cast<double>(run->store_hits)},
    };
    if (run == &warm) {
      s.ok = s.ok && warm_from_store;
      if (n >= kCliqueMinNodes) s.ok = s.ok && speedup >= kAcceptanceSpeedup;
    }
    ctx.record(std::move(s));
  }
}

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(1024)) {
    multi_client_family(ctx, n);
    saturating_family(ctx, n);
  }
  // Raise the ladder to the gated clique sizes (>= 4096).
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t s : ctx.sizes(kCliqueMaxNodes)) {
    const std::uint32_t n = std::max(kCliqueMinNodes, s);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  for (const std::uint32_t n : sizes) {
    restart_family(ctx, n);
  }
}

const bool registered = register_scenario(
    {"serve_throughput",
     "Serve daemon: multi-client specs/sec + p50/p99 latency, and the "
     "cold-vs-warm-restart plan-store acceptance",
     {"micro", "scaling"},
     &run});

}  // namespace
}  // namespace radiocast::bench
