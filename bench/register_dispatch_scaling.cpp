// Micro-bench P5 — active-set protocol dispatch: full algorithm-B broadcast
// executions where the labeling keeps O(1) nodes active per round, timed
// under the serial full scan vs the calendar-driven active set.  Families:
//  - dispatch/path/<mode>: B on a path — ~2n rounds with a constant-size
//    active set, the worst case for the O(n)-per-round scan.  The
//    acceptance row: at n >= 16384 the active set must be >= 5x faster
//    than the scan (it is typically orders of magnitude faster).
//  - dispatch/grid/<mode>: B on a sqrt(n) x sqrt(n) grid — a wider frontier
//    (O(sqrt n) active nodes per round); recorded, not gated.
//  - dispatch/chatter_path/tN: hint-less always-active protocols, where the
//    active set degenerates to a full poll and the sharded decision sweep
//    takes over: serial scan vs the pool-sharded sweep at 4 workers
//    (recorded, not gated — the per-poll work is a single virtual call, so
//    the sweep's win is modest and machine-dependent).
// Correctness is cross-checked on every row: both dispatch modes must agree
// on completion round, rounds executed, transmission totals, and informed
// counts (the trace-level oracle lives in tests/test_dispatch.cpp).
#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "sim/dispatch.hpp"
#include "sim/engine.hpp"
#include "workloads.hpp"

namespace radiocast::bench {
namespace {

constexpr std::uint32_t kMinNodes = 4096;
constexpr std::uint32_t kMaxNodes = 16384;
constexpr std::uint32_t kAcceptanceNodes = 16384;
constexpr double kAcceptanceSpeedup = 5.0;

struct BroadcastStep {
  std::uint64_t wall_ns = 0;
  std::uint64_t rounds = 0;
  std::uint64_t completion = 0;
  std::uint64_t tx_total = 0;
  std::uint64_t polls = 0;
  bool all_informed = false;
};

/// One full B execution under the given dispatch mode (scalar backend: the
/// sparse graphs here are exactly its regime), best of `kReps`.
BroadcastStep run_broadcast_mode(const graph::Graph& g,
                                 const core::Labeling& labeling,
                                 sim::DispatchKind dispatch) {
  constexpr int kReps = 3;
  BroadcastStep best;
  for (int rep = 0; rep < kReps; ++rep) {
    BroadcastStep cur;
    sim::Engine engine(g, core::make_broadcast_protocols(labeling, 42),
                       {sim::TraceLevel::kCounters, false,
                        sim::BackendKind::kScalar, 0, dispatch});
    const auto max_rounds = core::default_round_budget(g.node_count(), 4);
    cur.wall_ns = time_ns([&] {
      engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                       max_rounds);
    });
    cur.rounds = engine.round();
    cur.completion = engine.last_first_data_reception();
    cur.tx_total = engine.transmissions_total();
    cur.polls = engine.polls_total();
    cur.all_informed = engine.all_informed();
    if (rep == 0 || cur.wall_ns < best.wall_ns) best = cur;
  }
  return best;
}

void broadcast_family(Context& ctx, const std::string& family,
                      const graph::Graph& g, bool acceptance_family) {
  const auto labeling = core::label_broadcast(g, 0);
  const auto scan =
      run_broadcast_mode(g, labeling, sim::DispatchKind::kScan);
  const auto active =
      run_broadcast_mode(g, labeling, sim::DispatchKind::kActiveSet);

  const bool agree = scan.all_informed && active.all_informed &&
                     scan.rounds == active.rounds &&
                     scan.completion == active.completion &&
                     scan.tx_total == active.tx_total;
  const double speedup =
      active.wall_ns ? static_cast<double>(scan.wall_ns) /
                           static_cast<double>(active.wall_ns)
                     : 0.0;

  for (const auto* mode : {&scan, &active}) {
    Sample s;
    s.family = "dispatch/" + family + "/" +
               (mode == &scan ? std::string("scan") : std::string("active"));
    s.n = g.node_count();
    s.m = g.edge_count();
    s.rounds = mode->rounds;
    s.transmissions = mode->tx_total;
    s.wall_ns = mode->wall_ns;
    s.ok = agree;
    s.extra = {{"speedup_vs_scan", speedup},
               {"polls", static_cast<double>(mode->polls)},
               {"completion_round", static_cast<double>(mode->completion)}};
    // Acceptance: >= 5x on the sparse-activity workload at n >= 16384.
    if (acceptance_family && mode == &active &&
        g.node_count() >= kAcceptanceNodes) {
      s.ok = s.ok && speedup >= kAcceptanceSpeedup;
    }
    ctx.record(std::move(s));
  }
}

/// Hint-less dense dispatch: serial scan vs the sharded decision sweep.
/// Only meaningful at n >= kDispatchShardMinPolls — below it the 4-thread
/// engine never shards and both runs would take the same serial path.
void chatter_family(Context& ctx, std::uint32_t n) {
  if (n < sim::kDispatchShardMinPolls) return;
  const graph::Graph g = graph::path(n);
  constexpr std::uint64_t kSteps = 24;
  const auto hw = sim::resolve_thread_count(0);
  // threads=1 keeps the sweep serial; threads=4 shards it (when the round
  // clears sim::kDispatchShardMinPolls, which n >= 8192 does).
  const auto serial = run_dense_steps(g, sim::BackendKind::kScalar, 1,
                                      /*all_transmit=*/false, kSteps,
                                      sim::DispatchKind::kScan);
  const auto sharded = run_dense_steps(g, sim::BackendKind::kScalar, 4,
                                       /*all_transmit=*/false, kSteps,
                                       sim::DispatchKind::kScan);
  const double speedup =
      sharded.wall_ns ? static_cast<double>(serial.wall_ns) /
                            static_cast<double>(sharded.wall_ns)
                      : 0.0;
  Sample s;
  s.family = "dispatch/chatter_path/t4";
  s.n = n;
  s.m = g.edge_count();
  s.rounds = kSteps;
  s.transmissions = sharded.tx_total;
  s.wall_ns = sharded.wall_ns;
  s.ok = sharded.tx_total == serial.tx_total &&
         sharded.rx_total == serial.rx_total;
  s.extra = {{"speedup_vs_serial_scan", speedup},
             {"serial_wall_ns", static_cast<double>(serial.wall_ns)},
             {"hw_threads", static_cast<double>(hw)}};
  ctx.record(std::move(s));
}

void run(Context& ctx) {
  // Raise the ladder into territory where the per-round scan hurts.
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t s : ctx.sizes(kMaxNodes)) {
    const std::uint32_t n = std::max(kMinNodes, s);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  for (const std::uint32_t n : sizes) {
    broadcast_family(ctx, "path", graph::path(n), /*acceptance_family=*/true);
  }
  for (const std::uint32_t n : sizes) {
    const auto side = static_cast<std::uint32_t>(std::sqrt(double(n)));
    broadcast_family(ctx, "grid", graph::grid(side, side),
                     /*acceptance_family=*/false);
  }
  for (const std::uint32_t n : sizes) {
    chatter_family(ctx, n);
  }
}

const bool registered = register_scenario(
    {"dispatch_scaling",
     "Active-set protocol dispatch vs full per-round scan (B, sparse "
     "activity)",
     {"micro", "scaling"},
     &run});

}  // namespace
}  // namespace radiocast::bench
