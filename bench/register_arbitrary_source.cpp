// Experiment E5 — B_arb (§4): the labeling does not know the source; every
// sampled source must deliver µ to all nodes with a network-wide agreed
// completion round.
#include "harness.hpp"

#include <algorithm>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(48)) {
    const auto suite = analysis::quick_suite(n, 11 * n);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          std::uint32_t sources = 0, failures = 0, compiled_mismatch = 0;
          std::uint64_t t_min = ~0ull, t_max = 0, T = 0;
          std::uint64_t compiled_ns = 0;
          const std::uint32_t stride = std::max(1u, s.n / 8);
          s.wall_ns = time_ns([&] {
            for (graph::NodeId src = 0; src < s.n; src += stride) {
              core::RunOptions opt;
              opt.backend = ctx.backend();
              opt.threads = ctx.threads();
              opt.dispatch = ctx.dispatch();
              const auto run =
                  core::run_arbitrary(w.graph, src, /*coordinator=*/0, opt);
              ++sources;
              if (!run.ok) ++failures;
              T = run.T;
              t_min = std::min(t_min, run.total_rounds);
              t_max = std::max(t_max, run.total_rounds);
              // The compiled §4 prediction must reproduce the engine run.
              core::ArbRun compiled;
              compiled_ns += time_ns([&] {
                compiled =
                    core::run_arb_compiled(w.graph, src, /*coordinator=*/0,
                                           opt);
              });
              if (compiled.ok != run.ok ||
                  compiled.total_rounds != run.total_rounds ||
                  compiled.done_round != run.done_round ||
                  compiled.T != run.T) {
                ++compiled_mismatch;
              }
            }
          });
          s.rounds = t_max;
          s.ok = failures == 0 && compiled_mismatch == 0;
          s.extra = {{"sources", static_cast<double>(sources)},
                     {"failures", static_cast<double>(failures)},
                     {"T", static_cast<double>(T)},
                     {"rounds_min", static_cast<double>(t_min)},
                     {"compiled_wall_ns", static_cast<double>(compiled_ns)},
                     {"compiled_mismatches",
                      static_cast<double>(compiled_mismatch)}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"arbitrary_source",
     "B_arb (paper 4): every sampled source completes with agreed round",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
