// Experiment E3 — label budgets: λ uses at most 4 label values (2 bits),
// λ_ack at most 5 (Fact 3.1 forbids 101/111/011), λ_arb at most 6.
// Histograms are aggregated over random graphs plus the standard suite.
#include "harness.hpp"

#include <algorithm>

#include "analysis/experiments.hpp"
#include "analysis/metrics.hpp"
#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  std::vector<std::uint64_t> hist_l(8, 0), hist_ack(8, 0), hist_arb(8, 0);
  std::uint32_t max_l = 0, max_ack = 0, max_arb = 0;
  std::uint64_t graphs = 0, nodes = 0, edges = 0;

  const auto feed = [&](const graph::Graph& g, graph::NodeId src) {
    ++graphs;
    nodes += g.node_count();
    edges += g.edge_count();
    const auto l = core::label_broadcast(g, src);
    const auto a = core::label_acknowledged(g, src);
    const auto r = core::label_arbitrary(g, src);
    for (const auto& lab : l.labels) ++hist_l[lab.value()];
    for (const auto& lab : a.labels) ++hist_ack[lab.value()];
    for (const auto& lab : r.labels) ++hist_arb[lab.value()];
    max_l = std::max(max_l, analysis::distinct_labels(l.labels));
    max_ack = std::max(max_ack, analysis::distinct_labels(a.labels));
    max_arb = std::max(max_arb, analysis::distinct_labels(r.labels));
  };

  Sample s;
  s.family = "budget-sweep";
  s.wall_ns = time_ns([&] {
    Rng rng(2019);
    const std::uint32_t span = std::max(8u, ctx.sizes().back());
    for (int rep = 0; rep < 100; ++rep) {
      const auto n = 8 + static_cast<std::uint32_t>(rng.below(span - 7));
      const double p = 0.05 + 0.4 * rng.uniform();
      const auto g = graph::gnp_connected(n, p, rng);
      feed(g, static_cast<graph::NodeId>(rng.below(n)));
    }
    for (const std::uint32_t n : ctx.sizes(64)) {
      for (const auto& w : analysis::standard_suite(n, 5)) {
        feed(w.graph, w.source);
      }
    }
  });
  s.n = static_cast<std::uint32_t>(nodes / std::max<std::uint64_t>(1, graphs));
  s.m = edges / std::max<std::uint64_t>(1, graphs);

  const bool fact31 =
      hist_ack[0b101] == 0 && hist_ack[0b111] == 0 && hist_ack[0b011] == 0;
  const bool budgets = max_l <= 4 && max_ack <= 5 && max_arb <= 6;
  s.ok = fact31 && budgets;
  s.extra = {{"graphs", static_cast<double>(graphs)},
             {"max_distinct_lambda", static_cast<double>(max_l)},
             {"max_distinct_lambda_ack", static_cast<double>(max_ack)},
             {"max_distinct_lambda_arb", static_cast<double>(max_arb)},
             {"fact_3_1", fact31 ? 1.0 : 0.0}};
  ctx.record(std::move(s));
}

const bool registered = register_scenario(
    {"labels",
     "label-value budgets: lambda<=4, lambda_ack<=5 (Fact 3.1), lambda_arb<=6",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
