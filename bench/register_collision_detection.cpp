// Experiment E11 — §1.1 model contrast on symmetric networks: unlabeled
// broadcast without collision detection is provably blocked, the anonymous
// beep protocol with collision detection delivers, and the paper's 2-bit λ
// delivers without collision detection.
#include "harness.hpp"

#include "analysis/symmetry.hpp"
#include "baselines/beep.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  constexpr std::uint32_t kBits = 8;
  constexpr std::uint32_t kMu = 0xB7;

  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"C4", graph::cycle(4)});
  cases.push_back({"C16", graph::cycle(16)});
  cases.push_back({"K_{3,3}", graph::complete_bipartite(3, 3)});
  cases.push_back({"Q4-hypercube", graph::hypercube(4)});
  cases.push_back({"torus-4x4", graph::torus(4, 4)});
  cases.push_back({"path-P16", graph::path(16)});
  cases.push_back({"grid-4x4", graph::grid(4, 4)});

  for (const auto& c : cases) {
    Sample s;
    s.family = c.name;
    s.n = c.g.node_count();
    s.m = c.g.edge_count();
    bool blocked = false;
    baselines::BeepRun beep;
    core::BroadcastRun b;
    s.wall_ns = time_ns([&] {
      const std::vector<std::uint32_t> plain(c.g.node_count(), 0);
      blocked = analysis::analyze_symmetry(c.g, plain, 0).broadcast_blocked;
      beep = baselines::run_beep(c.g, 0, kMu, kBits);
      core::RunOptions opt;
      opt.backend = ctx.backend();
      opt.dispatch = ctx.dispatch();
      b = core::run_broadcast(c.g, 0, opt);
    });
    s.rounds = b.completion_round;
    s.transmissions = b.data_tx_count + b.stay_count;
    s.ok = beep.ok && b.all_informed;
    s.extra = {{"unlabeled_blocked", blocked ? 1.0 : 0.0},
               {"beep_rounds", static_cast<double>(beep.completion_round)},
               {"ecc", static_cast<double>(graph::eccentricity(c.g, 0))}};
    ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"collision_detection",
     "paper 1.1: collision detection vs 2-bit labels on symmetric networks",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
