// Micro-bench P6 — the plan-caching batched sweep executor: batched
// experiments/sec with a cold vs warm `runtime::PlanCache`.  Families:
//  - sweep/suite/{cold,warm}: a quick-suite × {b, ack, arb, multi,
//    round-robin} engine-path batch per ladder size.  Warm batches reuse
//    the cached labelings but still execute every engine run; recorded,
//    not gated (the win is labeling-bound and workload-dependent).
//  - sweep/clique-compiled/{cold,warm}: clique at n >= 4096, schemes
//    b/ack/arb through the compiled fast path, several sources.  A warm
//    batch is pure cache lookups — the acceptance row: warm throughput
//    must be >= 3x cold at n >= 4096.
// Correctness is cross-checked on every row: the warm batch must reproduce
// the cold batch's formatted results line for line (the byte-determinism
// oracle lives in tests/test_runtime.cpp).
#include "harness.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/experiments.hpp"
#include "graph/generators.hpp"
#include "runtime/sweep.hpp"

namespace radiocast::bench {
namespace {

constexpr std::uint32_t kCliqueMinNodes = 4096;
constexpr std::uint32_t kCliqueMaxNodes = 8192;
constexpr double kAcceptanceSpeedup = 3.0;

struct BatchRun {
  std::uint64_t wall_ns = 0;
  std::vector<std::string> lines;
  runtime::PlanCacheStats stats;
};

BatchRun run_batch(runtime::SweepRunner& runner,
                   const std::vector<runtime::ExperimentSpec>& specs) {
  BatchRun out;
  std::vector<runtime::SchemeResult> results;
  out.wall_ns = time_ns([&] { results = runner.run(specs); });
  out.lines = analysis::format_sweep(specs, results);
  out.stats = runner.cache_stats();
  return out;
}

void record_pair(Context& ctx, const std::string& family, std::uint32_t n,
                 std::uint64_t m, std::size_t experiments,
                 const BatchRun& cold, const BatchRun& warm, bool gated) {
  const bool agree = cold.lines == warm.lines;
  const double speedup = warm.wall_ns ? static_cast<double>(cold.wall_ns) /
                                            static_cast<double>(warm.wall_ns)
                                      : 0.0;
  for (const auto* run : {&cold, &warm}) {
    Sample s;
    s.family = family + (run == &cold ? "/cold" : "/warm");
    s.n = n;
    s.m = m;
    s.rounds = experiments;  // batch size, for experiments/sec math
    s.wall_ns = run->wall_ns;
    s.ok = agree;
    const double secs = static_cast<double>(run->wall_ns) / 1e9;
    s.extra = {
        {"experiments_per_sec",
         secs > 0 ? static_cast<double>(experiments) / secs : 0.0},
        {"warm_speedup", speedup},
        {"plan_misses", static_cast<double>(run->stats.plan_misses)},
        {"plan_hits", static_cast<double>(run->stats.plan_hits)},
        {"compiled_misses",
         static_cast<double>(run->stats.compiled_misses)},
        {"compiled_hits", static_cast<double>(run->stats.compiled_hits)},
    };
    // Acceptance: the warm cache must be >= 3x cold on the compiled clique
    // batch at n >= 4096 (a warm batch never recomputes a plan).
    if (gated && run == &warm && n >= kCliqueMinNodes) {
      s.ok = s.ok && speedup >= kAcceptanceSpeedup;
    }
    ctx.record(std::move(s));
  }
}

/// Engine-path batch over the quick suite: labelings cached, runs repeated.
void suite_family(Context& ctx, std::uint32_t n) {
  const auto suite = analysis::quick_suite(n, /*seed=*/n);
  runtime::SweepRunner runner(ctx.pool());
  runtime::ExecutionConfig config = ctx.exec();
  const auto specs = analysis::scheme_specs(
      runner, suite, {"b", "ack", "arb", "multi", "round-robin"}, config);
  const auto cold = run_batch(runner, specs);
  const auto warm = run_batch(runner, specs);
  std::uint64_t edges = 0;
  for (const auto& w : suite) edges += w.graph.edge_count();
  record_pair(ctx, "sweep/suite", n, edges, specs.size(), cold, warm,
              /*gated=*/false);
}

/// Compiled-path batch on a clique: a warm batch is pure cache lookups.
void clique_compiled_family(Context& ctx, std::uint32_t n) {
  const graph::Graph g = graph::complete(n);
  runtime::SweepRunner runner(ctx.pool());
  const runtime::GraphRef graph = runner.add_graph(g);
  runtime::ExecutionConfig config = ctx.exec();
  config.compiled = true;
  std::vector<runtime::ExperimentSpec> specs;
  for (const char* scheme : {"b", "ack", "arb"}) {
    for (graph::NodeId source = 0; source < 4; ++source) {
      runtime::ExperimentSpec spec;
      spec.scheme = scheme;
      spec.graph = graph;
      spec.source = source;
      spec.config = config;
      spec.label = std::string("clique/") + scheme;
      specs.push_back(std::move(spec));
    }
  }
  const auto cold = run_batch(runner, specs);
  const auto warm = run_batch(runner, specs);
  record_pair(ctx, "sweep/clique-compiled", n, g.edge_count(), specs.size(),
              cold, warm, /*gated=*/true);
}

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(1024)) {
    suite_family(ctx, n);
  }
  // Raise the ladder to the gated clique sizes (>= 4096).
  std::vector<std::uint32_t> sizes;
  for (const std::uint32_t s : ctx.sizes(kCliqueMaxNodes)) {
    const std::uint32_t n = std::max(kCliqueMinNodes, s);
    if (std::find(sizes.begin(), sizes.end(), n) == sizes.end()) {
      sizes.push_back(n);
    }
  }
  for (const std::uint32_t n : sizes) {
    clique_compiled_family(ctx, n);
  }
}

const bool registered = register_scenario(
    {"sweep_throughput",
     "Plan-caching batched sweep executor: cold vs warm cache "
     "experiments/sec",
     {"micro", "scaling"},
     &run});

}  // namespace
}  // namespace radiocast::bench
