// Graceful degradation under faults: the paper's schemes assume a perfect
// radio layer — this scenario measures what each one actually does when the
// layer drops deliveries.  Plain B replays Lemma 2.8's fixed schedule, so a
// single lost delivery on a path severs the frontier forever; B_ack's
// resilient mode (SchemeOptions::resilient) retries data on the frontier
// and acks on the way back, trading round inflation for completion.  The
// gate: at 10% edge loss on a path with n >= 256, resilient B_ack still
// reaches full broadcast (and closes the ack) while plain B does not.
#include "harness.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "graph/generators.hpp"
#include "runtime/scheme.hpp"
#include "sim/faults.hpp"

namespace radiocast::bench {
namespace {

/// Nodes that ever received a data message, plus the source itself.
double completion_rate(const runtime::SchemeResult& run, std::uint32_t n) {
  std::set<graph::NodeId> informed{0};
  for (const auto& round : run.trace.rounds()) {
    for (const auto& d : round.deliveries) informed.insert(d.first);
  }
  return static_cast<double>(informed.size()) / static_cast<double>(n);
}

void run(Context& ctx) {
  // The degradation gap needs a long path (one lost frontier hop kills
  // plain B); clamp the ladder up so the gate always sees n >= 256.
  const std::uint32_t n = std::max(256u, ctx.sizes().back());
  const graph::Graph g = graph::path(n);

  const runtime::Scheme* b = runtime::SchemeRegistry::instance().find("b");
  const runtime::Scheme* ack = runtime::SchemeRegistry::instance().find("ack");

  runtime::SchemeOptions plain_opt;
  runtime::SchemeOptions resilient_opt;
  resilient_opt.resilient = true;
  const runtime::PlanPtr b_plan = b->label(g, 0, plain_opt);
  const runtime::PlanPtr ack_plan = ack->label(g, 0, resilient_opt);

  // Loss ladder in ppm: 0, 2%, 5%, 10%.  Deterministic seed so the perf
  // trajectory (and the snapshot gate) sees one fixed loss process.
  constexpr std::uint64_t kLossLadder[] = {0, 20000, 50000, 100000};
  std::uint64_t b_base_rounds = 0;
  std::uint64_t ack_base_rounds = 0;

  for (const std::uint64_t loss_ppm : kLossLadder) {
    runtime::ExecutionConfig config = ctx.exec();
    config.compiled = false;  // faults need the engine
    config.trace = sim::TraceLevel::kFull;
    config.max_rounds = 32 * n;
    if (loss_ppm != 0) {
      config.faults.edge_loss_ppm = loss_ppm;
      config.faults.seed = 7;
    }
    const std::string pct = std::to_string(loss_ppm / 10000);

    // Plain B: fixed schedule, no retries.
    {
      Sample s;
      s.family = "faults/path_b/loss" + pct;
      s.n = n;
      s.m = g.edge_count();
      runtime::SchemeResult run;
      s.wall_ns = time_ns([&] {
        run = runtime::run_with_plan(*b, g, 0, b_plan, plain_opt, config);
      });
      s.rounds = run.rounds;
      s.transmissions = run.tx_total;
      if (loss_ppm == 0) b_base_rounds = run.completion_round;
      const double rate = completion_rate(run, n);
      // Gate: loss-free B completes; at 10% the fixed schedule must NOT
      // reach everyone — that failure is the documented degradation the
      // resilient mode exists to fix.
      if (loss_ppm == 0) {
        s.ok = run.ok && run.all_informed;
      } else if (loss_ppm == 100000) {
        s.ok = !run.all_informed;
      } else {
        s.ok = true;  // intermediate losses are data, not a gate
      }
      s.extra = {{"loss_ppm", static_cast<double>(loss_ppm)},
                 {"completion_rate", rate},
                 {"completion_round",
                  static_cast<double>(run.completion_round)},
                 {"all_informed", run.all_informed ? 1.0 : 0.0}};
      ctx.record(std::move(s));
    }

    // Resilient B_ack: epoch-slotted retries through the same loss process.
    {
      Sample s;
      s.family = "faults/path_ack/loss" + pct;
      s.n = n;
      s.m = g.edge_count();
      runtime::SchemeResult run;
      s.wall_ns = time_ns([&] {
        run = runtime::run_with_plan(*ack, g, 0, ack_plan, resilient_opt,
                                     config);
      });
      s.rounds = run.rounds;
      s.transmissions = run.tx_total;
      if (loss_ppm == 0) ack_base_rounds = run.ack_round;
      const double rate = completion_rate(run, n);
      // Gate: full broadcast and a closed ack chain at every loss rate.
      s.ok = run.all_informed && run.ack_round != 0;
      const double inflation =
          ack_base_rounds != 0
              ? static_cast<double>(run.ack_round) /
                    static_cast<double>(ack_base_rounds)
              : 0.0;
      s.extra = {{"loss_ppm", static_cast<double>(loss_ppm)},
                 {"completion_rate", rate},
                 {"completion_round",
                  static_cast<double>(run.completion_round)},
                 {"ack_round", static_cast<double>(run.ack_round)},
                 {"round_inflation", inflation},
                 {"b_base_rounds", static_cast<double>(b_base_rounds)}};
      ctx.record(std::move(s));
    }
  }
}

const bool registered = register_scenario(
    {"fault_resilience",
     "graceful degradation: B vs resilient B_ack under edge loss on a path",
     {"smoke", "robustness"},
     &run});

}  // namespace
}  // namespace radiocast::bench
