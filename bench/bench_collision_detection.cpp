// Experiment E11 — the §1.1 model contrast: "If collision detection is
// available, broadcast is trivially feasible, even in anonymous networks."
//
// Side-by-side on symmetric networks: without collision detection and
// without labels the equitable-partition certificate proves impossibility;
// with collision detection the anonymous beep protocol delivers the message
// in ecc·(L+1) rounds; and the paper's 2-bit λ solves it without collision
// detection.  Three models, one table.
#include <cstdio>

#include "analysis/symmetry.hpp"
#include "baselines/beep.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E11: collision detection vs labels (paper §1.1)\n\n");
  constexpr std::uint32_t kBits = 8;
  constexpr std::uint32_t kMu = 0xB7;

  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"C4", graph::cycle(4)});
  cases.push_back({"C16", graph::cycle(16)});
  cases.push_back({"K_{3,3}", graph::complete_bipartite(3, 3)});
  cases.push_back({"Q4 hypercube", graph::hypercube(4)});
  cases.push_back({"torus 4x4", graph::torus(4, 4)});
  cases.push_back({"path P16", graph::path(16)});
  cases.push_back({"grid 4x4", graph::grid(4, 4)});

  bool all_ok = true;
  TextTable table({"network", "n", "ecc", "anon, no-CD", "anon beep + CD",
                   "rounds", "2-bit lambda, no-CD", "rounds"});
  for (const auto& c : cases) {
    const std::vector<std::uint32_t> plain(c.g.node_count(), 0);
    const auto sym = analysis::analyze_symmetry(c.g, plain, 0);
    const auto beep = baselines::run_beep(c.g, 0, kMu, kBits);
    const auto b = core::run_broadcast(c.g, 0);
    all_ok = all_ok && beep.ok && b.all_informed;
    table.row()
        .add(c.name)
        .add(c.g.node_count())
        .add(graph::eccentricity(c.g, 0))
        .add(sym.broadcast_blocked ? "IMPOSSIBLE" : "feasible")
        .add(beep.ok ? "delivered" : "FAILED")
        .add(beep.completion_round)
        .add(b.all_informed ? "delivered" : "FAILED")
        .add(b.completion_round);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: collision detection makes broadcast trivially feasible "
              "even anonymously (bit-by-bit, silence=0, energy=1); measured: "
              "%s.  The networks marked IMPOSSIBLE are exactly where the "
              "paper's labels are load-bearing.\n",
              all_ok ? "beep protocol delivered everywhere" : "FAILURE");
  return all_ok ? 0 : 1;
}
