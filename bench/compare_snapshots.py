#!/usr/bin/env python3
"""CI perf-regression gate over radiocast-bench snapshots.

Diffs a fresh ``radiocast_bench --json`` run against a committed snapshot
(bench/snapshots/BENCH_<tag>.json) per (scenario, family, n) key and fails
on order-of-magnitude wall-time regressions.

Raw wall times are not comparable across machines (the snapshot is recorded
on a developer box, the fresh run on a CI runner), so by default the gate
*calibrates*: it computes the per-key ratio fresh/baseline, takes the median
ratio as the machine-speed factor, and flags keys whose ratio exceeds
``factor * tolerance``.  A uniform slowdown (slower runner, debug build)
moves the median, not the verdict; a single scenario regressing 10x while
the rest hold still sticks out.  ``--no-calibrate`` compares absolute ratios
instead (useful when both documents come from the same machine).

Keys whose wall time is below ``--min-wall-ns`` in *either* document are
skipped — sub-0.1ms samples are scheduler noise on shared CI runners.
Within a key, the minimum wall time across repetitions is used.

Exit status: 0 = no regression (or too few comparable keys to judge),
1 = regression found, 2 = usage/input error.
"""

import argparse
import json
import statistics
import sys


def load_samples(path, min_wall_ns):
    """Returns {(scenario, family, n): min wall_ns} for one document."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != "radiocast-bench/1":
        sys.exit(f"error: {path} is not a radiocast-bench/1 document")
    wall = {}
    not_ok = []
    for scenario in doc.get("scenarios", []):
        for s in scenario.get("samples", []):
            key = (s["scenario"], s["family"], s["n"])
            w = s["wall_ns"]
            if key not in wall or w < wall[key]:
                wall[key] = w
            if not s.get("ok", True):
                not_ok.append(key)
    return {k: w for k, w in wall.items() if w >= min_wall_ns}, not_ok


def main():
    ap = argparse.ArgumentParser(
        description="Diff a fresh bench JSON against a committed snapshot "
        "and fail on large wall-time regressions."
    )
    ap.add_argument("baseline", help="committed snapshot (the reference)")
    ap.add_argument("fresh", help="freshly produced bench JSON")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="max allowed per-key slowdown after calibration "
        "(default %(default)s; CI runners are noisy, keep it generous)",
    )
    ap.add_argument(
        "--min-wall-ns",
        type=int,
        default=100_000,
        help="skip keys faster than this in either document "
        "(default %(default)s ns)",
    )
    ap.add_argument(
        "--no-calibrate",
        action="store_true",
        help="compare absolute ratios instead of median-normalized ones",
    )
    ap.add_argument(
        "--min-keys",
        type=int,
        default=3,
        help="minimum comparable keys required to judge (default %(default)s)",
    )
    args = ap.parse_args()
    if args.tolerance <= 1.0:
        ap.error("--tolerance must be > 1.0")

    base, _ = load_samples(args.baseline, args.min_wall_ns)
    fresh, fresh_not_ok = load_samples(args.fresh, args.min_wall_ns)

    if fresh_not_ok:
        # The bench binary's exit code already gates invariant failures; this
        # is a secondary net for pre-recorded JSON artifacts.
        print(f"note: {len(fresh_not_ok)} fresh sample(s) carry ok=false "
              "(the bench run itself should have failed)")

    shared = sorted(set(base) & set(fresh))
    if len(shared) < args.min_keys:
        print(
            f"only {len(shared)} comparable key(s) between {args.baseline} "
            f"and {args.fresh} (need {args.min_keys}); skipping the gate"
        )
        return 0

    ratios = {k: fresh[k] / base[k] for k in shared}
    factor = 1.0 if args.no_calibrate else statistics.median(ratios.values())
    # A median below 1 means the fresh machine is faster; do not let that
    # tighten the gate beyond the raw tolerance.
    factor = max(factor, 1.0)

    limit = factor * args.tolerance
    offenders = sorted(
        ((r, k) for k, r in ratios.items() if r > limit), reverse=True
    )

    print(
        f"compared {len(shared)} keys  "
        f"(machine factor {factor:.2f}, tolerance {args.tolerance:.1f}x, "
        f"flag above {limit:.2f}x)"
    )
    worst = max(ratios.items(), key=lambda kv: kv[1])
    print(
        f"worst ratio {worst[1]:.2f}x at "
        f"{worst[0][0]}/{worst[0][1]} n={worst[0][2]}"
    )

    if not offenders:
        print("no wall-time regressions beyond tolerance")
        return 0

    print(f"\nREGRESSIONS ({len(offenders)}):")
    for r, (scenario, family, n) in offenders[:20]:
        print(
            f"  {r:8.2f}x  {scenario}/{family} n={n}  "
            f"{base[(scenario, family, n)]/1e6:.3f}ms -> "
            f"{fresh[(scenario, family, n)]/1e6:.3f}ms"
        )
    if len(offenders) > 20:
        print(f"  ... and {len(offenders) - 20} more")
    return 1


if __name__ == "__main__":
    sys.exit(main())
