// Experiment E4 — the §3 closing construction: after B_ack(µ) the source
// broadcasts m; every node learns m strictly before round 2m and all nodes
// share the common completion round 2m.
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(256)) {
    const auto suite = analysis::standard_suite(n, 3 * n + 1);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::CommonRoundRun run;
          s.wall_ns =
              time_ns([&] {
                core::RunOptions opt;
                opt.backend = ctx.backend();
                opt.dispatch = ctx.dispatch();
                run = core::run_common_round(w.graph, w.source, opt);
              });
          s.rounds = run.common_round;
          s.ok = run.ok && run.last_learned < run.common_round;
          s.extra = {{"ack_m", static_cast<double>(run.m)},
                     {"last_learned", static_cast<double>(run.last_learned)}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"common_round",
     "paper 3 closing: all nodes agree on the common completion round 2m",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
