// Experiment E8 — the §5 one-bit claims: radius-<=2 graphs, grids and
// series-parallel graphs, plus the 3-label-value acknowledged variants.
// Success is a per-graph searched-and-verified certificate.  Cases whose
// size exceeds the --sizes ceiling are skipped.
#include "harness.hpp"

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "onebit/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  struct Case {
    std::string name;
    graph::Graph g;
    graph::NodeId source = 0;
  };
  std::vector<Case> cases;

  // Radius-<=2 instances: dense random graphs + bipartite + stars from a leaf.
  {
    Rng rng(808);
    for (int i = 0; i < 6; ++i) {
      auto g = graph::gnp_connected(24 + 8 * static_cast<std::uint32_t>(i),
                                    0.4, rng);
      if (graph::eccentricity(g, 0) <= 2) {
        cases.push_back({"radius2/gnp-dense", std::move(g), 0});
      }
    }
    cases.push_back({"radius2/K_{6,9}", graph::complete_bipartite(6, 9), 0});
    cases.push_back({"radius2/star-leaf", graph::star(40), 3});
  }
  // Grids (the §5 assertion) of growing size, corner and interior sources.
  for (const auto& [r, c] : {std::pair{3u, 3u}, std::pair{4u, 6u},
                             std::pair{7u, 7u}, std::pair{10u, 10u},
                             std::pair{12u, 16u}}) {
    cases.push_back({"grid/" + std::to_string(r) + "x" + std::to_string(c),
                     graph::grid(r, c), 0});
  }
  cases.push_back({"grid/8x8-interior", graph::grid(8, 8), 3 * 8 + 4});
  // Series-parallel graphs.
  {
    Rng rng(909);
    for (const std::uint32_t e : {10u, 30u, 80u, 200u}) {
      cases.push_back({"series-parallel/m~" + std::to_string(e),
                       graph::series_parallel(e, rng), 0});
    }
  }
  // Trees and cycles round out the picture (also 1-bit labelable).
  {
    Rng rng(1010);
    cases.push_back({"tree/random-40", graph::random_tree(40, rng), 0});
    cases.push_back({"cycle/C24", graph::cycle(24), 0});
    cases.push_back({"path/P50", graph::path(50), 0});
  }

  // Respect the --sizes ceiling so smoke runs stay cheap; always keep the
  // smallest instances.
  const std::uint32_t cap = std::max(24u, ctx.sizes().back());
  std::erase_if(cases, [&](const Case& c) { return c.g.node_count() > cap; });

  const auto samples =
      par::parallel_map(ctx.pool(), cases.size(), [&](std::size_t i) {
        const auto& c = cases[i];
        Sample s;
        s.family = c.name;
        s.n = c.g.node_count();
        s.m = c.g.edge_count();
        onebit::OneBitRun run, ack;
        s.wall_ns = time_ns([&] {
          run = onebit::run_onebit(c.g, c.source,
                                   {.max_attempts = 256,
                                    .engine_backend = ctx.backend(),
                                    .engine_dispatch = ctx.dispatch()});
          ack = onebit::run_onebit_acknowledged(
              c.g, c.source,
              {.max_attempts = 256,
               .engine_backend = ctx.backend(),
               .engine_dispatch = ctx.dispatch()});
        });
        s.rounds = run.completion_round;
        s.ok = run.ok && ack.ok;
        s.extra = {{"attempts", static_cast<double>(run.attempts)},
                   {"ones", static_cast<double>(run.ones)},
                   {"ack_round", static_cast<double>(ack.ack_round)}};
        return s;
      });
  for (auto& s : samples) ctx.record(std::move(s));
}

const bool registered = register_scenario(
    {"onebit",
     "paper 5: searched one-bit labelings on radius-2/grid/series-parallel",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
