// Experiment E2 — Theorem 3.9 / Corollary 3.8: acknowledged broadcast must
// inform everyone by 2n-3 and deliver the first ack inside the Cor 3.8 window;
// the paper's t+n-2 slack fails only on the ell=n extremal paths (t+n-1).
#include "harness.hpp"

#include <algorithm>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(256)) {
    const auto suite = analysis::standard_suite(n, 7 * n);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::AckRun run;
          core::RunOptions opt;
          opt.backend = ctx.backend();
          opt.threads = ctx.threads();
          opt.dispatch = ctx.dispatch();
          s.wall_ns = time_ns(
              [&] { run = core::run_acknowledged(w.graph, w.source, opt); });
          s.rounds = run.completion_round;
          const std::uint64_t ell = run.ell;
          const bool in_cor38 =
              run.all_informed && run.ack_round >= 2 * ell - 2 &&
              run.ack_round <=
                  std::max<std::uint64_t>(3 * ell - 4, 2 * ell - 2);
          const bool in_fixed_window =
              run.ack_round >= run.completion_round + 1 &&
              run.ack_round <= run.completion_round + s.n - 1;
          // The compiled Theorem 3.9 replay must agree with the engine on
          // every observable it predicts.
          core::AckRun compiled;
          const auto compiled_ns = time_ns([&] {
            compiled = core::run_acknowledged_compiled(w.graph, w.source, opt);
          });
          const bool compiled_agrees =
              compiled.all_informed == run.all_informed &&
              compiled.completion_round == run.completion_round &&
              compiled.ack_round == run.ack_round &&
              compiled.max_stamp == run.max_stamp;
          s.ok = in_cor38 && in_fixed_window && compiled_agrees;
          s.extra = {{"ack_round", static_cast<double>(run.ack_round)},
                     {"ell", static_cast<double>(run.ell)},
                     {"max_stamp", static_cast<double>(run.max_stamp)},
                     {"compiled_wall_ns", static_cast<double>(compiled_ns)},
                     {"compiled_agrees", compiled_agrees ? 1.0 : 0.0}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"ack",
     "Theorem 3.9: acknowledged-broadcast completion and ack windows",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
