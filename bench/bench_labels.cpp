// Experiment E3 — label budgets: λ uses at most 4 label values (2 bits),
// λ_ack at most 5 (Fact 3.1 forbids 101/111/011), λ_arb exactly adds the
// coordinator's 111 for at most 6.  Histograms are aggregated over many
// random graphs plus the whole family suite.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "analysis/metrics.hpp"
#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E3: label-value budgets of the three schemes\n\n");
  const char* names[8] = {"000", "001", "010", "011", "100", "101", "110", "111"};

  std::vector<std::uint64_t> hist_l(8, 0), hist_ack(8, 0), hist_arb(8, 0);
  std::uint32_t max_l = 0, max_ack = 0, max_arb = 0;
  std::uint64_t graphs = 0;

  Rng rng(2019);
  auto feed = [&](const graph::Graph& g, graph::NodeId s) {
    ++graphs;
    const auto l = core::label_broadcast(g, s);
    const auto a = core::label_acknowledged(g, s);
    const auto r = core::label_arbitrary(g, s);
    for (const auto& lab : l.labels) ++hist_l[lab.value()];
    for (const auto& lab : a.labels) ++hist_ack[lab.value()];
    for (const auto& lab : r.labels) ++hist_arb[lab.value()];
    max_l = std::max(max_l, analysis::distinct_labels(l.labels));
    max_ack = std::max(max_ack, analysis::distinct_labels(a.labels));
    max_arb = std::max(max_arb, analysis::distinct_labels(r.labels));
  };

  for (int rep = 0; rep < 400; ++rep) {
    const auto n = 8 + static_cast<std::uint32_t>(rng.below(56));
    const double p = 0.05 + 0.4 * rng.uniform();
    const auto g = graph::gnp_connected(n, p, rng);
    feed(g, static_cast<graph::NodeId>(rng.below(n)));
  }
  for (const auto& w : analysis::standard_suite(48, 5)) feed(w.graph, w.source);

  TextTable table({"label", "lambda(2-bit)", "lambda_ack(3-bit)",
                   "lambda_arb(3-bit)"});
  for (int v = 0; v < 8; ++v) {
    table.row()
        .add(names[v])
        .add(hist_l[static_cast<std::size_t>(v)])
        .add(hist_ack[static_cast<std::size_t>(v)])
        .add(hist_arb[static_cast<std::size_t>(v)]);
  }
  std::printf("%s\n", table.str().c_str());

  const bool fact31 =
      hist_ack[0b101] == 0 && hist_ack[0b111] == 0 && hist_ack[0b011] == 0;
  const bool budgets = max_l <= 4 && max_ack <= 5 && max_arb <= 6;
  std::printf("graphs labeled: %llu\n", static_cast<unsigned long long>(graphs));
  std::printf("max distinct values: lambda=%u (paper: <=4), lambda_ack=%u "
              "(paper: <=5), lambda_arb=%u (paper: <=6)\n",
              max_l, max_ack, max_arb);
  std::printf("Fact 3.1 (101/111/011 never assigned by lambda_ack): %s\n",
              fact31 ? "holds" : "VIOLATED");
  return (fact31 && budgets) ? 0 : 1;
}
