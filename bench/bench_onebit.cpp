// Experiment E8 — the §5 one-bit claims: radius-<=2 graphs (the paper's
// explicit modification), grids and series-parallel graphs (asserted without
// construction), plus the 3-label-value acknowledged variants.  Success is a
// per-graph searched-and-verified certificate (DESIGN.md §3.4).
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/traversal.hpp"
#include "onebit/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Experiment E8: one-bit labeling schemes (paper §5)\n\n");
  par::ThreadPool pool;
  bool all_ok = true;

  struct Case {
    std::string name;
    graph::Graph g;
    graph::NodeId source = 0;
  };
  std::vector<Case> cases;

  // Radius-<=2 instances: dense random graphs + bipartite + stars from a leaf.
  {
    Rng rng(808);
    for (int i = 0; i < 6; ++i) {
      auto g = graph::gnp_connected(24 + 8 * static_cast<std::uint32_t>(i), 0.4, rng);
      if (graph::eccentricity(g, 0) <= 2) {
        cases.push_back({"radius2/gnp-dense", std::move(g), 0});
      }
    }
    cases.push_back({"radius2/K_{6,9}", graph::complete_bipartite(6, 9), 0});
    cases.push_back({"radius2/star-leaf", graph::star(40), 3});
  }
  // Grids (the §5 assertion) of growing size, corner and interior sources.
  for (const auto& [r, c] : {std::pair{3u, 3u}, std::pair{4u, 6u},
                            std::pair{7u, 7u}, std::pair{10u, 10u},
                            std::pair{12u, 16u}}) {
    cases.push_back({"grid/" + std::to_string(r) + "x" + std::to_string(c),
                     graph::grid(r, c), 0});
  }
  cases.push_back({"grid/8x8-interior", graph::grid(8, 8), 3 * 8 + 4});
  // Series-parallel graphs.
  {
    Rng rng(909);
    for (const std::uint32_t e : {10u, 30u, 80u, 200u}) {
      cases.push_back({"series-parallel/m~" + std::to_string(e),
                       graph::series_parallel(e, rng), 0});
    }
  }
  // Trees and cycles round out the picture (also 1-bit labelable).
  {
    Rng rng(1010);
    cases.push_back({"tree/random-40", graph::random_tree(40, rng), 0});
    cases.push_back({"cycle/C24", graph::cycle(24), 0});
    cases.push_back({"path/P50", graph::path(50), 0});
  }

  struct Row {
    std::string name;
    std::uint32_t n = 0, attempts = 0, ones = 0;
    std::uint64_t rounds = 0, ack = 0;
    bool ok = false, ack_ok = false;
  };
  const auto rows = par::parallel_map(pool, cases.size(), [&](std::size_t i) {
    const auto& c = cases[i];
    const auto run = onebit::run_onebit(c.g, c.source, {.max_attempts = 256});
    const auto ack =
        onebit::run_onebit_acknowledged(c.g, c.source, {.max_attempts = 256});
    return Row{c.name,       c.g.node_count(), run.attempts, run.ones,
               run.completion_round, ack.ack_round, run.ok, ack.ok};
  });

  TextTable table({"instance", "n", "1-bit ok", "rounds", "bound 2n-3",
                   "ones", "tries", "ack(3 labels)", "ack round"});
  for (const auto& r : rows) {
    all_ok = all_ok && r.ok && r.ack_ok;
    table.row()
        .add(r.name)
        .add(r.n)
        .add(r.ok ? "yes" : "NO")
        .add(r.rounds)
        .add(2ull * r.n - 3)
        .add(r.ones)
        .add(r.attempts)
        .add(r.ack_ok ? "yes" : "NO")
        .add(r.ack);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("paper: 1-bit labels suffice for radius-2 / grids / "
              "series-parallel, acknowledged with 3 label values; measured: %s\n",
              all_ok ? "certificates found and engine-verified for all instances"
                     : "SOME INSTANCE FAILED");
  return all_ok ? 0 : 1;
}
