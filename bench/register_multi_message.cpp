// Experiment E12 — the §1.2 "many consecutive messages" scenario: K
// acknowledged broadcasts over one labeling, the source gated on each ack.
// Determinism makes the pipeline perfectly periodic.
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "core/multi.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  constexpr std::size_t kMessages = 8;
  for (const std::uint32_t n : ctx.sizes(256)) {
    const auto suite = analysis::quick_suite(n, 17 * n);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::MultiRun run;
          s.wall_ns = time_ns([&] {
            std::vector<std::uint32_t> payloads(kMessages);
            for (std::size_t k = 0; k < kMessages; ++k) {
              payloads[k] = static_cast<std::uint32_t>(k + 1);
            }
            run = core::run_multi_broadcast(w.graph, w.source, payloads,
                                            core::DomPolicy::kAscendingId,
                                            ctx.backend(), ctx.threads(),
                                            ctx.dispatch());
          });
          bool periodic = run.ok;
          for (std::size_t k = 1; k < run.ack_rounds.size(); ++k) {
            if (run.ack_rounds[k] - run.ack_rounds[k - 1] !=
                run.rounds_per_message) {
              periodic = false;
            }
          }
          s.rounds = run.total_rounds;
          s.ok = run.ok && periodic;
          s.extra = {
              {"messages", static_cast<double>(kMessages)},
              {"rounds_per_message",
               static_cast<double>(run.rounds_per_message)},
              {"first_ack",
               run.ack_rounds.empty()
                   ? 0.0
                   : static_cast<double>(run.ack_rounds.front())}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"multi_message",
     "paper 1.2: K acknowledged broadcasts pipeline perfectly periodically",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
