// Experiment E10 — message-size accounting: algorithm B uses constant-size
// control information; B_ack appends a Θ(log n)-bit round counter.
#include "harness.hpp"

#include <algorithm>

#include "analysis/metrics.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(2048)) {
    const auto g = graph::path(n);
    Sample s;
    s.family = "path";
    s.n = g.node_count();
    s.m = g.edge_count();

    std::uint32_t b_bits = 0, ack_bits = 0, log_bound = 0;
    std::uint64_t transmissions = 0;
    core::AckRun ack;
    std::uint64_t completion = 0;
    s.wall_ns = time_ns([&] {
      // Algorithm B: walk the full trace and charge every message.
      const auto lab = core::label_broadcast(g, 0);
      sim::Engine eng_b(g, core::make_broadcast_protocols(lab, 1),
                        {sim::TraceLevel::kFull});
      eng_b.run_until([](const sim::Engine& e) { return e.all_informed(); },
                      4ull * n + 8);
      completion = eng_b.round();
      for (const auto& rec : eng_b.trace().rounds()) {
        transmissions += rec.transmissions.size();
        for (const auto& [v, msg] : rec.transmissions) {
          b_bits = std::max(b_bits, analysis::control_bits(msg, false));
        }
      }

      core::RunOptions ack_opt;
      ack_opt.backend = ctx.backend();
      ack_opt.dispatch = ctx.dispatch();
      ack = core::run_acknowledged(g, 0, ack_opt);
      const sim::Message worst{sim::MsgKind::kAck, 0, 0, ack.max_stamp};
      ack_bits = analysis::control_bits(worst, false);

      while ((1ull << log_bound) < 3ull * n) ++log_bound;
    });

    s.rounds = completion;
    s.transmissions = transmissions;
    s.ok = b_bits <= 3 && ack_bits <= 3 + log_bound + 1 && ack.all_informed;
    s.extra = {{"b_ctrl_bits", static_cast<double>(b_bits)},
               {"ack_ctrl_bits", static_cast<double>(ack_bits)},
               {"ack_max_stamp", static_cast<double>(ack.max_stamp)},
               {"log2_3n", static_cast<double>(log_bound)}};
    ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"message_size",
     "control bits per message: B constant, B_ack O(log n) stamp",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
