// Micro-bench P2 — simulator throughput: full B executions on sparse random
// graphs, worst-case dense engine stepping, and thread-pooled sweep scaling —
// the HPC-facing measurements of the harness itself.
#include "harness.hpp"

#include <algorithm>
#include <memory>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

class Chatter final : public sim::Protocol {
 public:
  std::optional<sim::Message> on_round() override {
    return sim::Message{sim::MsgKind::kData, 0, 0, std::nullopt};
  }
  void on_hear(const sim::Message&) override {}
  bool informed() const override { return true; }
};

void run(Context& ctx) {
  // Full broadcast executions on sparse gnp graphs.
  for (const std::uint32_t n : ctx.sizes(16384)) {
    Rng rng(n);
    const auto g = graph::gnp_connected(n, 6.0 / n, rng);
    const auto labeling = core::label_broadcast(g, 0);
    Sample s;
    s.family = "full_broadcast/gnp";
    s.n = g.node_count();
    s.m = g.edge_count();
    bool informed = false;
    std::uint64_t rounds = 0;
    s.wall_ns = time_ns([&] {
      sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1));
      engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                       4ull * n + 8);
      rounds = engine.round();
      informed = engine.all_informed();
    });
    s.rounds = rounds;
    s.ok = informed;
    ctx.record(std::move(s));
  }

  // Worst-case per-round cost: everyone transmits every round (all collide).
  for (const std::uint32_t n : ctx.sizes(512)) {
    const auto g = graph::complete(n);
    std::vector<std::unique_ptr<sim::Protocol>> protocols;
    for (std::uint32_t v = 0; v < n; ++v) {
      protocols.push_back(std::make_unique<Chatter>());
    }
    sim::Engine engine(g, std::move(protocols));
    constexpr std::uint64_t kSteps = 64;
    Sample s;
    s.family = "engine_step/complete";
    s.n = g.node_count();
    s.m = g.edge_count();
    s.wall_ns = time_ns([&] {
      for (std::uint64_t i = 0; i < kSteps; ++i) engine.step();
    });
    s.rounds = kSteps;
    s.transmissions = kSteps * n;
    s.ok = true;
    ctx.record(std::move(s));
  }

  // End-to-end sweep throughput on the shared pool.
  {
    constexpr std::size_t kGraphs = 32;
    const std::uint32_t n = std::min(256u, ctx.sizes().back());
    Rng rng(7);
    std::vector<graph::Graph> graphs;
    for (std::size_t i = 0; i < kGraphs; ++i) {
      graphs.push_back(graph::gnp_connected(n, 6.0 / n, rng));
    }
    Sample s;
    s.family = "parallel_sweep/gnp";
    s.n = n;
    std::uint64_t total_rounds = 0;
    s.wall_ns = time_ns([&] {
      const auto rounds =
          par::parallel_map(ctx.pool(), graphs.size(), [&](std::size_t i) {
            return core::run_broadcast(graphs[i], 0).completion_round;
          });
      for (const auto r : rounds) total_rounds += r;
    });
    s.rounds = total_rounds;
    s.ok = true;
    s.extra = {{"graphs", static_cast<double>(kGraphs)},
               {"threads", static_cast<double>(ctx.pool().thread_count())}};
    ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"sim_throughput",
     "simulator throughput: full runs, dense stepping, pooled sweeps",
     {"smoke", "micro"},
     &run});

}  // namespace
}  // namespace radiocast::bench
