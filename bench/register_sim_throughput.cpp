// Micro-bench P2 — simulator throughput: full B executions on sparse random
// graphs, worst-case dense engine stepping, and thread-pooled sweep scaling —
// the HPC-facing measurements of the harness itself.
#include "harness.hpp"

#include <algorithm>
#include <memory>

#include "core/labeling.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/backend.hpp"
#include "sim/engine.hpp"
#include "sim/simd.hpp"
#include "support/rng.hpp"
#include "workloads.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  // Full broadcast executions on sparse gnp graphs.
  for (const std::uint32_t n : ctx.sizes(16384)) {
    Rng rng(n);
    const auto g = graph::gnp_connected(n, 6.0 / n, rng);
    const auto labeling = core::label_broadcast(g, 0);
    Sample s;
    s.family = "full_broadcast/gnp";
    s.n = g.node_count();
    s.m = g.edge_count();
    bool informed = false;
    std::uint64_t rounds = 0;
    s.wall_ns = time_ns([&] {
      sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                         {sim::TraceLevel::kCounters, false, ctx.backend(),
                          ctx.threads()});
      engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                       4ull * n + 8);
      rounds = engine.round();
      informed = engine.all_informed();
    });
    s.rounds = rounds;
    s.ok = informed;
    ctx.record(std::move(s));
  }

  // Worst-case per-round cost: everyone transmits every round (all collide).
  for (const std::uint32_t n : ctx.sizes(512)) {
    const auto g = graph::complete(n);
    std::vector<std::unique_ptr<sim::Protocol>> protocols;
    for (std::uint32_t v = 0; v < n; ++v) {
      protocols.push_back(std::make_unique<Chatter>());
    }
    sim::Engine engine(g, std::move(protocols),
                       {sim::TraceLevel::kCounters, false, ctx.backend(),
                        ctx.threads()});
    constexpr std::uint64_t kSteps = 64;
    Sample s;
    s.family = "engine_step/complete";
    s.n = g.node_count();
    s.m = g.edge_count();
    s.wall_ns = time_ns([&] {
      for (std::uint64_t i = 0; i < kSteps; ++i) engine.step();
    });
    s.rounds = kSteps;
    s.transmissions = kSteps * n;
    s.ok = true;
    ctx.record(std::move(s));
  }

  // Regression guard for the sparse-round hot path: resolving a round with a
  // single degree-1 transmitter must cost O(deg), independent of n.  The seed
  // engine allocated and zeroed an O(n) std::vector<bool> per round; this
  // asserts that per-round cost stays flat (generous 32x slack + an absolute
  // 1µs floor against timer noise) as n grows 16x.
  {
    constexpr std::uint64_t kRounds = 1 << 14;
    const std::uint32_t small_n = 4096, large_n = 65536;
    double per_round[2] = {0, 0};
    const std::uint32_t ns[2] = {small_n, large_n};
    for (int i = 0; i < 2; ++i) {
      const auto g = graph::path(ns[i]);
      const auto backend =
          sim::make_engine_backend(g, sim::BackendKind::kScalar);
      const graph::NodeId tx[1] = {0};
      sim::RoundResolution res;
      const auto wall = time_ns([&] {
        for (std::uint64_t r = 0; r < kRounds; ++r) {
          backend->resolve(tx, /*want_collisions=*/true, res);
        }
      });
      per_round[i] = static_cast<double>(wall) / kRounds;
      Sample s;
      s.family = "engine_step/sparse_round";
      s.n = ns[i];
      s.m = g.edge_count();
      s.rounds = kRounds;
      s.transmissions = kRounds;
      s.wall_ns = wall;
      s.extra = {{"ns_per_round", per_round[i]}};
      s.ok = i == 0 ||
             per_round[1] <
                 std::max(1000.0, 32.0 * std::max(per_round[0], 1.0));
      ctx.record(std::move(s));
    }
  }

  // Regression guard for the bit backend's sparse-round cost: the once /
  // twice accumulators are engine-owned scratch initialized by the first
  // transmitter row, so a single-transmitter round must stay O(n/64) words
  // — per-word cost flat as rows grow 4x (generous 16x slack + a 1µs
  // absolute floor against timer noise).  A reintroduced per-round O(n)
  // allocation or superlinear pass trips this.
  {
    constexpr std::uint64_t kRounds = 1 << 13;
    const std::uint32_t ns[2] = {4096, 16384};
    double per_word[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      const auto g = graph::path(ns[i]);
      const auto backend = sim::make_engine_backend(g, sim::BackendKind::kBit);
      const graph::NodeId tx[1] = {0};
      sim::RoundResolution res;
      const auto wall = time_ns([&] {
        for (std::uint64_t r = 0; r < kRounds; ++r) {
          backend->resolve(tx, /*want_collisions=*/true, res);
        }
      });
      const double words = static_cast<double>(ns[i]) / 64.0;
      per_word[i] = static_cast<double>(wall) / kRounds / words;
      Sample s;
      s.family = "engine_step/bit_sparse_round";
      s.n = ns[i];
      s.m = g.edge_count();
      s.rounds = kRounds;
      s.transmissions = kRounds;
      s.wall_ns = wall;
      s.extra = {{"ns_per_round", static_cast<double>(wall) / kRounds},
                 {"ns_per_word", per_word[i]}};
      s.ok = i == 0 || static_cast<double>(wall) / kRounds < 1000.0 ||
             per_word[1] < 16.0 * std::max(per_word[0], 0.01);
      ctx.record(std::move(s));
    }
  }

  // Raw kernel word throughput: the scalar accumulate/heard kernels vs the
  // best ISA the host offers, on an L1/L2-resident word array.  The kernels
  // are fetched explicitly through `kernels_for`, so the comparison is
  // unaffected by --isa / RADIOCAST_FORCE_ISA.  Gate: the vector kernels
  // must beat scalar by >= 1.5x; hosts without AVX2 self-skip (ok stays
  // true, extra.skipped = 1) so the gate never fails on machines the
  // speedup cannot exist on.
  {
    namespace simd = sim::simd;
    const auto best = simd::best_available();
    // L1-resident: 5 arrays x 4 KiB.  Larger footprints turn the comparison
    // into a cache-bandwidth race where the wider ISA cannot show its ALU
    // advantage (engine rows are usually cache-hot across rounds, so this is
    // also the representative regime).
    constexpr std::size_t kWords = 512;
    constexpr std::uint64_t kIters = 4096;
    constexpr int kTrials = 5;
    Sample s;
    s.family = "engine_step/word_throughput";
    s.n = static_cast<std::uint32_t>(kWords * 64);
    if (best == simd::Isa::kScalar) {
      s.ok = true;
      s.extra = {{"skipped", 1.0}};
      ctx.record(std::move(s));
    } else {
      Rng rng(17);
      std::vector<std::uint64_t> row(kWords), tx(kWords);
      for (auto& w : row) w = rng.next();
      for (auto& w : tx) w = rng.next() & rng.next();
      std::vector<std::uint64_t> once(kWords), twice(kWords), heard(kWords);
      std::uint64_t sink = 0;
      const auto measure = [&](const simd::Kernels& k) {
        std::uint64_t best_wall = ~0ull;
        for (int t = 0; t < kTrials; ++t) {
          std::fill(once.begin(), once.end(), 0);
          std::fill(twice.begin(), twice.end(), 0);
          const auto wall = time_ns([&] {
            for (std::uint64_t i = 0; i < kIters; ++i) {
              k.accumulate(once.data(), twice.data(), row.data(), kWords);
              sink ^= k.heard_sweep(heard.data(), once.data(), twice.data(),
                                    tx.data(), kWords);
            }
          });
          best_wall = std::min(best_wall, wall);
        }
        return best_wall;
      };
      const auto scalar_wall = measure(simd::kernels_for(simd::Isa::kScalar));
      const auto vector_wall = measure(simd::kernels_for(best));
      const double speedup = static_cast<double>(scalar_wall) /
                             static_cast<double>(std::max<std::uint64_t>(
                                 vector_wall, 1));
      // Two kernel passes per iteration.
      const double words = 2.0 * static_cast<double>(kWords) * kIters;
      s.wall_ns = scalar_wall + vector_wall;
      s.ok = speedup >= 1.5 && sink != 0xdeadbeef;  // sink defeats DCE
      s.extra = {{"speedup", speedup},
                 {"scalar_words_per_ns",
                  words / static_cast<double>(scalar_wall)},
                 {"vector_words_per_ns",
                  words / static_cast<double>(vector_wall)},
                 {"best_isa", static_cast<double>(best)}};
      ctx.record(std::move(s));
    }
  }

  // Post-hear re-arm cost: B_arb on dense graphs under forced active-set
  // dispatch, with the post-hear hint disabled vs enabled.  Dense delivery
  // and collision rounds hit every listener; the blanket re-arm turns each
  // into n polls next round, the hint version re-queries and skips the
  // idle ones.  Gate (dense families only): hint on must beat hint off by
  // >= 1.3x on run_until wall time (engine construction excluded), with
  // identical completion rounds.
  {
    struct DenseKey {
      const char* name;
      graph::Graph g;
      // The clique runs with collision detection on: its x1/x2 rounds are
      // all-collide, and with CD every such round makes the blanket path
      // re-arm all n listeners for a wasted poll while B_arb's no-op
      // `on_collision` leaves the hint path idle.  CD only adds collision
      // signals, so the execution is otherwise identical.
      bool collision_detection;
    };
    Rng rng(23);
    // The clique completes in ~6 rounds with only ~2 of them generating
    // blanket re-arm waste — delivery work dominates its wall time, so the
    // wall gate lives on the long-running dense-gnp key and on the dense
    // aggregate; the clique key gates trace equality (identical completion
    // round) and reports its speedup.
    std::vector<DenseKey> keys;
    keys.push_back({"clique", graph::complete(2048), true});
    keys.push_back(
        {"gnp_dense", graph::gnp_connected(4096, 256.0 / 4096, rng), false});
    std::uint64_t total_off = 0, total_on = 0;
    for (auto& key : keys) {
      const auto labeling = core::label_arbitrary(key.g, /*coordinator=*/0);
      const graph::NodeId source = key.g.node_count() / 2;
      constexpr int kReps = 24;
      const auto measure = [&](bool hint, std::uint64_t& rounds_out) {
        std::uint64_t total = 0;
        for (int i = 0; i < kReps; ++i) {
          sim::EngineOptions eopt;
          eopt.trace = sim::TraceLevel::kCounters;
          eopt.collision_detection = key.collision_detection;
          eopt.backend = ctx.backend();
          eopt.threads = ctx.threads();
          eopt.dispatch = sim::DispatchKind::kActiveSet;
          eopt.post_hear_hint = hint;
          sim::Engine engine(key.g,
                             core::make_arb_protocols(labeling, source, 42),
                             eopt);
          total += time_ns([&] {
            engine.run_until(
                [](const sim::Engine& e) { return e.all_informed(); },
                16ull * key.g.node_count());
          });
          rounds_out = engine.round();
        }
        return total;
      };
      std::uint64_t rounds_off = 0, rounds_on = 0;
      const auto off_wall = measure(false, rounds_off);
      const auto on_wall = measure(true, rounds_on);
      const double speedup =
          static_cast<double>(off_wall) /
          static_cast<double>(std::max<std::uint64_t>(on_wall, 1));
      total_off += off_wall;
      total_on += on_wall;
      const bool wall_gated = std::string(key.name) == "gnp_dense";
      Sample s;
      s.family = std::string("engine_step/post_hear_rearm/") + key.name;
      s.n = key.g.node_count();
      s.m = key.g.edge_count();
      s.rounds = rounds_on;
      s.wall_ns = off_wall + on_wall;
      s.ok = rounds_off == rounds_on && (!wall_gated || speedup >= 1.3);
      s.extra = {{"speedup", speedup},
                 {"off_wall_ns", static_cast<double>(off_wall)},
                 {"on_wall_ns", static_cast<double>(on_wall)},
                 {"reps", static_cast<double>(kReps)}};
      ctx.record(std::move(s));
    }
    // Aggregate gate across the dense keys.
    const double agg = static_cast<double>(total_off) /
                       static_cast<double>(std::max<std::uint64_t>(total_on,
                                                                   1));
    Sample s;
    s.family = "engine_step/post_hear_rearm/dense_total";
    s.wall_ns = total_off + total_on;
    s.ok = agg >= 1.3;
    s.extra = {{"speedup", agg}};
    ctx.record(std::move(s));
  }

  // End-to-end sweep throughput on the shared pool.
  {
    constexpr std::size_t kGraphs = 32;
    const std::uint32_t n = std::min(256u, ctx.sizes().back());
    Rng rng(7);
    std::vector<graph::Graph> graphs;
    for (std::size_t i = 0; i < kGraphs; ++i) {
      graphs.push_back(graph::gnp_connected(n, 6.0 / n, rng));
    }
    Sample s;
    s.family = "parallel_sweep/gnp";
    s.n = n;
    std::uint64_t total_rounds = 0;
    s.wall_ns = time_ns([&] {
      core::RunOptions run_opt;
      run_opt.backend = ctx.backend();
      run_opt.threads = ctx.threads();
      const auto rounds =
          par::parallel_map(ctx.pool(), graphs.size(), [&](std::size_t i) {
            return core::run_broadcast(graphs[i], 0, run_opt).completion_round;
          });
      for (const auto r : rounds) total_rounds += r;
    });
    s.rounds = total_rounds;
    s.ok = true;
    s.extra = {{"graphs", static_cast<double>(kGraphs)},
               {"threads", static_cast<double>(ctx.pool().thread_count())}};
    ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"sim_throughput",
     "simulator throughput: full runs, dense stepping, kernel ISA and "
     "post-hear re-arm gates, pooled sweeps",
     {"smoke", "micro", "engine_step"},
     &run});

}  // namespace
}  // namespace radiocast::bench
