// Micro-bench P2 — simulator throughput: full B executions on sparse random
// graphs, worst-case dense engine stepping, and thread-pooled sweep scaling —
// the HPC-facing measurements of the harness itself.
#include "harness.hpp"

#include <algorithm>
#include <memory>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/backend.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "workloads.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  // Full broadcast executions on sparse gnp graphs.
  for (const std::uint32_t n : ctx.sizes(16384)) {
    Rng rng(n);
    const auto g = graph::gnp_connected(n, 6.0 / n, rng);
    const auto labeling = core::label_broadcast(g, 0);
    Sample s;
    s.family = "full_broadcast/gnp";
    s.n = g.node_count();
    s.m = g.edge_count();
    bool informed = false;
    std::uint64_t rounds = 0;
    s.wall_ns = time_ns([&] {
      sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                         {sim::TraceLevel::kCounters, false, ctx.backend(),
                          ctx.threads()});
      engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                       4ull * n + 8);
      rounds = engine.round();
      informed = engine.all_informed();
    });
    s.rounds = rounds;
    s.ok = informed;
    ctx.record(std::move(s));
  }

  // Worst-case per-round cost: everyone transmits every round (all collide).
  for (const std::uint32_t n : ctx.sizes(512)) {
    const auto g = graph::complete(n);
    std::vector<std::unique_ptr<sim::Protocol>> protocols;
    for (std::uint32_t v = 0; v < n; ++v) {
      protocols.push_back(std::make_unique<Chatter>());
    }
    sim::Engine engine(g, std::move(protocols),
                       {sim::TraceLevel::kCounters, false, ctx.backend(),
                        ctx.threads()});
    constexpr std::uint64_t kSteps = 64;
    Sample s;
    s.family = "engine_step/complete";
    s.n = g.node_count();
    s.m = g.edge_count();
    s.wall_ns = time_ns([&] {
      for (std::uint64_t i = 0; i < kSteps; ++i) engine.step();
    });
    s.rounds = kSteps;
    s.transmissions = kSteps * n;
    s.ok = true;
    ctx.record(std::move(s));
  }

  // Regression guard for the sparse-round hot path: resolving a round with a
  // single degree-1 transmitter must cost O(deg), independent of n.  The seed
  // engine allocated and zeroed an O(n) std::vector<bool> per round; this
  // asserts that per-round cost stays flat (generous 32x slack + an absolute
  // 1µs floor against timer noise) as n grows 16x.
  {
    constexpr std::uint64_t kRounds = 1 << 14;
    const std::uint32_t small_n = 4096, large_n = 65536;
    double per_round[2] = {0, 0};
    const std::uint32_t ns[2] = {small_n, large_n};
    for (int i = 0; i < 2; ++i) {
      const auto g = graph::path(ns[i]);
      const auto backend =
          sim::make_engine_backend(g, sim::BackendKind::kScalar);
      const graph::NodeId tx[1] = {0};
      sim::RoundResolution res;
      const auto wall = time_ns([&] {
        for (std::uint64_t r = 0; r < kRounds; ++r) {
          backend->resolve(tx, /*want_collisions=*/true, res);
        }
      });
      per_round[i] = static_cast<double>(wall) / kRounds;
      Sample s;
      s.family = "engine_step/sparse_round";
      s.n = ns[i];
      s.m = g.edge_count();
      s.rounds = kRounds;
      s.transmissions = kRounds;
      s.wall_ns = wall;
      s.extra = {{"ns_per_round", per_round[i]}};
      s.ok = i == 0 ||
             per_round[1] <
                 std::max(1000.0, 32.0 * std::max(per_round[0], 1.0));
      ctx.record(std::move(s));
    }
  }

  // Regression guard for the bit backend's sparse-round cost: the once /
  // twice accumulators are engine-owned scratch initialized by the first
  // transmitter row, so a single-transmitter round must stay O(n/64) words
  // — per-word cost flat as rows grow 4x (generous 16x slack + a 1µs
  // absolute floor against timer noise).  A reintroduced per-round O(n)
  // allocation or superlinear pass trips this.
  {
    constexpr std::uint64_t kRounds = 1 << 13;
    const std::uint32_t ns[2] = {4096, 16384};
    double per_word[2] = {0, 0};
    for (int i = 0; i < 2; ++i) {
      const auto g = graph::path(ns[i]);
      const auto backend = sim::make_engine_backend(g, sim::BackendKind::kBit);
      const graph::NodeId tx[1] = {0};
      sim::RoundResolution res;
      const auto wall = time_ns([&] {
        for (std::uint64_t r = 0; r < kRounds; ++r) {
          backend->resolve(tx, /*want_collisions=*/true, res);
        }
      });
      const double words = static_cast<double>(ns[i]) / 64.0;
      per_word[i] = static_cast<double>(wall) / kRounds / words;
      Sample s;
      s.family = "engine_step/bit_sparse_round";
      s.n = ns[i];
      s.m = g.edge_count();
      s.rounds = kRounds;
      s.transmissions = kRounds;
      s.wall_ns = wall;
      s.extra = {{"ns_per_round", static_cast<double>(wall) / kRounds},
                 {"ns_per_word", per_word[i]}};
      s.ok = i == 0 || static_cast<double>(wall) / kRounds < 1000.0 ||
             per_word[1] < 16.0 * std::max(per_word[0], 0.01);
      ctx.record(std::move(s));
    }
  }

  // End-to-end sweep throughput on the shared pool.
  {
    constexpr std::size_t kGraphs = 32;
    const std::uint32_t n = std::min(256u, ctx.sizes().back());
    Rng rng(7);
    std::vector<graph::Graph> graphs;
    for (std::size_t i = 0; i < kGraphs; ++i) {
      graphs.push_back(graph::gnp_connected(n, 6.0 / n, rng));
    }
    Sample s;
    s.family = "parallel_sweep/gnp";
    s.n = n;
    std::uint64_t total_rounds = 0;
    s.wall_ns = time_ns([&] {
      core::RunOptions run_opt;
      run_opt.backend = ctx.backend();
      run_opt.threads = ctx.threads();
      const auto rounds =
          par::parallel_map(ctx.pool(), graphs.size(), [&](std::size_t i) {
            return core::run_broadcast(graphs[i], 0, run_opt).completion_round;
          });
      for (const auto r : rounds) total_rounds += r;
    });
    s.rounds = total_rounds;
    s.ok = true;
    s.extra = {{"graphs", static_cast<double>(kGraphs)},
               {"threads", static_cast<double>(ctx.pool().thread_count())}};
    ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"sim_throughput",
     "simulator throughput: full runs, dense stepping, pooled sweeps",
     {"smoke", "micro"},
     &run});

}  // namespace
}  // namespace radiocast::bench
