// Ablation A2 — λ_arb's free parameter: WHERE to place the coordinator r.
// Placement changes T (the phase-1 span, twice replayed); a central r should
// roughly halve the session versus a peripheral r on deep networks.
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "graph/traversal.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(96)) {
    const auto suite = analysis::quick_suite(n, 4096);
    const auto samples =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          Sample s;
          s.family = w.family;
          s.n = w.graph.node_count();
          s.m = w.graph.edge_count();
          core::ArbRun run_c, run_p, run_d;
          s.wall_ns = time_ns([&] {
            graph::NodeId central = 0, peripheral = 0;
            std::uint32_t best = ~0u, worst = 0;
            for (graph::NodeId v = 0; v < s.n; ++v) {
              const auto ecc = graph::eccentricity(w.graph, v);
              if (ecc < best) {
                best = ecc;
                central = v;
              }
              if (ecc > worst) {
                worst = ecc;
                peripheral = v;
              }
            }
            core::RunOptions opt;
            opt.backend = ctx.backend();
            opt.dispatch = ctx.dispatch();
            run_c = core::run_arbitrary(w.graph, w.source, central, opt);
            run_p = core::run_arbitrary(w.graph, w.source, peripheral, opt);
            run_d = core::run_arbitrary(w.graph, w.source, 0, opt);
          });
          s.rounds = run_d.total_rounds;
          s.ok = run_c.ok && run_p.ok && run_d.ok;
          s.extra = {
              {"rounds_central", static_cast<double>(run_c.total_rounds)},
              {"rounds_peripheral", static_cast<double>(run_p.total_rounds)}};
          return s;
        });
    for (auto& s : samples) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"coordinator_choice",
     "lambda_arb ablation: central vs peripheral coordinator placement",
     {"smoke", "ablation"},
     &run});

}  // namespace
}  // namespace radiocast::bench
