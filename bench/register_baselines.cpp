// Experiment E6 — the §1 positioning table: algorithm B (2-bit labels)
// against round-robin (Θ(log n) bits), color-robin over G² (Θ(log Δ) bits)
// and randomized label-free Decay.  One sample per (workload, scheme).
#include "harness.hpp"

#include "analysis/experiments.hpp"
#include "baselines/baselines.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"

namespace radiocast::bench {
namespace {

void run(Context& ctx) {
  for (const std::uint32_t n : ctx.sizes(256)) {
    const auto suite = analysis::standard_suite(n, 13 * n);
    const auto groups =
        par::parallel_map(ctx.pool(), suite.size(), [&](std::size_t i) {
          const auto& w = suite[i];
          std::vector<Sample> group;
          const auto base = [&](const char* scheme) {
            Sample s;
            s.family = w.family + "/" + scheme;
            s.n = w.graph.node_count();
            s.m = w.graph.edge_count();
            return s;
          };

          Sample b = base("B");
          core::BroadcastRun rb;
          core::RunOptions opt;
          opt.backend = ctx.backend();
          opt.dispatch = ctx.dispatch();
          b.wall_ns = time_ns(
              [&] { rb = core::run_broadcast(w.graph, w.source, opt); });
          b.rounds = rb.completion_round;
          b.transmissions = rb.data_tx_count + rb.stay_count;
          b.ok = rb.all_informed;
          b.extra = {{"label_bits", 2.0}};
          group.push_back(std::move(b));

          Sample rr = base("round_robin");
          baselines::BaselineRun rrr;
          rr.wall_ns =
              time_ns([&] { rrr = baselines::run_round_robin(w.graph,
                                                             w.source); });
          rr.rounds = rrr.completion_round;
          rr.ok = rrr.all_informed;
          rr.extra = {{"label_bits", static_cast<double>(rrr.label_bits)}};
          group.push_back(std::move(rr));

          Sample cr = base("color_robin");
          baselines::BaselineRun crr;
          cr.wall_ns =
              time_ns([&] { crr = baselines::run_color_robin(w.graph,
                                                             w.source); });
          cr.rounds = crr.completion_round;
          cr.ok = crr.all_informed;
          cr.extra = {{"label_bits", static_cast<double>(crr.label_bits)}};
          group.push_back(std::move(cr));

          Sample dk = base("decay");
          baselines::BaselineRun dkr;
          dk.wall_ns = time_ns(
              [&] { dkr = baselines::run_decay(w.graph, w.source, 1234 + i); });
          dk.rounds = dkr.completion_round;
          dk.ok = dkr.all_informed;
          dk.extra = {{"label_bits", 0.0}};
          group.push_back(std::move(dk));
          return group;
        });
    for (auto& group : groups) {
      for (auto& s : group) ctx.record(std::move(s));
    }
  }
}

const bool registered = register_scenario(
    {"baselines",
     "B vs round-robin, color-robin over G^2, and randomized Decay",
     {"smoke", "experiment"},
     &run});

}  // namespace
}  // namespace radiocast::bench
