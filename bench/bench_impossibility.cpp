// Experiment E7 — the §1 impossibility claim: without labels, deterministic
// broadcast is impossible on the four-cycle (and, by the same equitable-
// partition argument, on all even cycles, hypercubes and K_{a,b}); one bit of
// asymmetry or the paper's λ labeling removes every obstruction.
#include <cstdio>

#include "analysis/symmetry.hpp"
#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;
  using analysis::analyze_symmetry;

  std::printf("Experiment E7: impossibility certificates (paper §1, C4 argument)\n\n");

  struct Case {
    std::string name;
    graph::Graph g;
    graph::NodeId source;
    bool expect_blocked;
  };
  std::vector<Case> cases;
  cases.push_back({"C4 (paper's example)", graph::cycle(4), 0, true});
  for (const std::uint32_t n : {6u, 8u, 12u}) {
    cases.push_back({"C" + std::to_string(n), graph::cycle(n), 0, true});
  }
  for (const std::uint32_t n : {3u, 5u, 9u}) {
    cases.push_back({"C" + std::to_string(n) + " (odd)", graph::cycle(n), 0, false});
  }
  cases.push_back({"K_{2,3}", graph::complete_bipartite(2, 3), 0, true});
  cases.push_back({"K_{4,4}", graph::complete_bipartite(4, 4), 0, true});
  cases.push_back({"Q3 hypercube", graph::hypercube(3), 0, true});
  cases.push_back({"path P7 (mid source)", graph::path(7), 3, false});
  cases.push_back({"star S9 (center)", graph::star(9), 0, false});

  bool all_ok = true;
  TextTable table({"network", "n", "classes", "unlabeled", "lambda-labeled",
                   "as expected"});
  for (const auto& c : cases) {
    const std::vector<std::uint32_t> plain(c.g.node_count(), 0);
    const auto unl = analyze_symmetry(c.g, plain, c.source);

    const auto lab = core::label_broadcast(c.g, c.source);
    std::vector<std::uint32_t> colors(c.g.node_count());
    for (graph::NodeId v = 0; v < c.g.node_count(); ++v) {
      colors[v] = lab.labels[v].value();
    }
    const auto labeled = analyze_symmetry(c.g, colors, c.source);

    const bool as_expected =
        unl.broadcast_blocked == c.expect_blocked && !labeled.broadcast_blocked;
    all_ok = all_ok && as_expected;
    table.row()
        .add(c.name)
        .add(c.g.node_count())
        .add(unl.class_count)
        .add(unl.broadcast_blocked ? "BLOCKED" : "feasible")
        .add(labeled.broadcast_blocked ? "BLOCKED" : "feasible")
        .add(as_expected ? "yes" : "NO");
  }
  std::printf("%s\n", table.str().c_str());

  // How often does pure symmetry block unlabeled broadcast at random?
  Rng rng(99);
  int blocked = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const auto g = graph::gnp_connected(10, 0.25, rng);
    const std::vector<std::uint32_t> plain(g.node_count(), 0);
    if (analyze_symmetry(g, plain, 0).broadcast_blocked) ++blocked;
  }
  std::printf("random G(10, .25): %d/%d unlabeled instances carry a symmetry "
              "obstruction; lambda removes all of them.\n",
              blocked, trials);
  std::printf("paper: C4 impossible without labels; measured: %s\n",
              all_ok ? "certificate found exactly where expected" : "MISMATCH");
  return all_ok ? 0 : 1;
}
