// Micro-bench P1 — cost of the centralized preprocessing (stage-set
// construction + the three labelings) as a function of n and family.  This is
// the part the paper's "central monitor" runs once per deployment.
#include "harness.hpp"

#include <cmath>

#include "core/labeling.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "support/rng.hpp"

namespace radiocast::bench {
namespace {

struct Job {
  std::string family;
  graph::Graph g;
};

void run(Context& ctx) {
  std::vector<Job> jobs;
  for (const std::uint32_t n : ctx.sizes(16384)) {
    const auto side = static_cast<std::uint32_t>(
        std::max(2.0, std::sqrt(static_cast<double>(n))));
    Rng rng(n);
    jobs.push_back({"path", graph::path(n)});
    jobs.push_back({"grid", graph::grid(side, side)});
    jobs.push_back({"gnp", graph::gnp_connected(n, 8.0 / n, rng)});
  }

  const auto groups =
      par::parallel_map(ctx.pool(), jobs.size(), [&](std::size_t i) {
        const auto& job = jobs[i];
        std::vector<Sample> group;
        const auto measure = [&](const char* op, auto&& fn) {
          Sample s;
          s.family = job.family + "/" + op;
          s.n = job.g.node_count();
          s.m = job.g.edge_count();
          s.wall_ns = time_ns(fn);
          group.push_back(std::move(s));
        };
        measure("stage_sets", [&] { core::build_stage_sets(job.g, 0); });
        measure("label_broadcast", [&] { core::label_broadcast(job.g, 0); });
        measure("label_acknowledged",
                [&] { core::label_acknowledged(job.g, 0); });
        measure("label_arbitrary", [&] { core::label_arbitrary(job.g, 0); });
        return group;
      });
  for (auto& group : groups) {
    for (auto& s : group) ctx.record(std::move(s));
  }
}

const bool registered = register_scenario(
    {"construction",
     "preprocessing cost: stage sets and the three labelings per family/size",
     {"smoke", "micro"},
     &run});

}  // namespace
}  // namespace radiocast::bench
