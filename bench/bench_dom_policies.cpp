// Ablation A1 — the design choice the paper leaves open: WHICH minimal
// dominating subset DOM_i is selected.  All policies are correct (tests prove
// it); this bench measures their effect on ℓ, the completion round, the
// number of "stay" transmissions and the number of 1-labeled bits.
#include <cstdio>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/table.hpp"

int main() {
  using namespace radiocast;

  std::printf("Ablation A1: minimal-dominating-subset policy\n\n");
  par::ThreadPool pool;
  bool all_ok = true;

  struct Row {
    std::string family;
    core::DomPolicy policy{};
    std::uint32_t ell = 0;
    std::uint64_t rounds = 0, stays = 0, data_tx = 0, max_tx = 0;
    bool ok = false;
  };

  const auto suite = analysis::standard_suite(96, 2718);
  std::vector<std::pair<std::size_t, core::DomPolicy>> jobs;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (const auto p : core::kAllDomPolicies) jobs.emplace_back(i, p);
  }
  const auto rows = par::parallel_map(pool, jobs.size(), [&](std::size_t j) {
    const auto& [i, policy] = jobs[j];
    const auto& w = suite[i];
    core::RunOptions opt;
    opt.policy = policy;
    opt.seed = 31337;
    opt.trace = sim::TraceLevel::kFull;
    const auto run = core::run_broadcast(w.graph, w.source, opt);
    return Row{w.family,       policy,
               run.ell,        run.completion_round,
               run.stay_count, run.data_tx_count,
               run.max_node_tx, run.all_informed};
  });

  TextTable table(
      {"family", "policy", "ell", "rounds", "mu-tx", "stay-tx", "max-node-tx"});
  for (const auto& r : rows) {
    all_ok = all_ok && r.ok;
    table.row()
        .add(r.family)
        .add(core::to_string(r.policy))
        .add(r.ell)
        .add(r.rounds)
        .add(r.data_tx)
        .add(r.stays)
        .add(r.max_tx);
  }
  std::printf("%s\n", table.str().c_str());

  // Aggregate per policy.
  TextTable agg({"policy", "sum rounds", "sum mu-tx", "sum stay-tx",
                 "worst duty"});
  for (const auto p : core::kAllDomPolicies) {
    std::uint64_t rounds = 0, data = 0, stays = 0, duty = 0;
    for (const auto& r : rows) {
      if (r.policy == p) {
        rounds += r.rounds;
        data += r.data_tx;
        stays += r.stays;
        duty = std::max(duty, r.max_tx);
      }
    }
    agg.row().add(core::to_string(p)).add(rounds).add(data).add(stays).add(duty);
  }
  std::printf("%s\n", agg.str().c_str());
  std::printf("takeaway: correctness is policy-independent (paper needs only "
              "minimality); greedy-cover trades fewer transmitters for more "
              "stay traffic.  all runs informed: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
