// SDN-style role assignment — the paper's second §1.2 scenario.
//
// An SDN controller assigns each wireless switch one of six forwarding roles
// (the λ_arb labels).  Because λ_arb does not fix the source, ANY switch can
// later originate a broadcast: here an alert is raised at three different
// switches in turn, and the same role table serves all of them, ending each
// time with a network-wide agreed completion round (acknowledged broadcast).
#include <cstdio>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

int main() {
  using namespace radiocast;

  Rng rng(1234);
  const graph::Graph fabric = graph::gnp_connected(30, 0.12, rng);
  std::printf("switch fabric: %s\n", fabric.summary().c_str());

  const graph::NodeId controller_choice = 0;  // coordinator r
  const core::ArbLabeling roles =
      core::label_arbitrary(fabric, controller_choice);
  std::printf("coordinator r = %u (role 111), chain anchor z = %u (role 001)\n",
              roles.coordinator, roles.z);

  std::vector<std::uint32_t> census(8, 0);
  for (const auto& l : roles.labels) ++census[l.value()];
  int distinct = 0;
  for (const auto c : census) distinct += c ? 1 : 0;
  std::printf("forwarding roles in use: %d (paper: 6 labels suffice)\n",
              distinct);

  for (const graph::NodeId alarm_origin : {7u, 19u, controller_choice}) {
    const auto run = core::run_arbitrary(fabric, alarm_origin,
                                         controller_choice, {.mu = 0xA1A7});
    std::printf("alert from switch %2u: delivered=%s, agreed completion round "
                "%llu, total rounds %llu (phase-1 span T=%llu)\n",
                alarm_origin, run.ok ? "yes" : "NO",
                static_cast<unsigned long long>(run.done_round),
                static_cast<unsigned long long>(run.total_rounds),
                static_cast<unsigned long long>(run.T));
    if (!run.ok) return 1;
  }
  return 0;
}
