// radiocast_serve — the sweep daemon: a long-lived SweepRunner behind a
// Unix or loopback-TCP socket, with an optional on-disk plan store so a
// restarted daemon answers its first batch from persisted labelings.
//
//   radiocast_serve --unix PATH | --tcp PORT
//                   [--store DIR] [--threads N] [--cache-bytes BYTES]
//                   [--pipeline-depth N] [--coalesce-window-ms M]
//
//   --unix PATH         listen on a Unix-domain socket at PATH
//   --tcp PORT          listen on 127.0.0.1:PORT (0 = ephemeral; the bound
//                       port is printed on stdout as "listening tcp PORT")
//   --store DIR         attach a PlanStore at DIR (created if absent):
//                       plans persist across restarts
//   --threads N         worker threads for batch execution (0 = hardware)
//   --cache-bytes B     PlanCache byte budget (0 = unlimited); evicted
//                       entries reload from the store instead of recompute
//   --pipeline-depth N  admission-queue capacity of the staged pipeline
//                       (default 32; 0 = serial legacy path, one batch at a
//                       time on the runner mutex)
//   --coalesce-window-ms M  extra wait for more batches to merge into one
//                       sweep before submitting (default 0: merge whatever
//                       has queued while the previous sweep ran)
//
// Protocol: u32-LE length-prefixed JSON frames; see src/serve/server.hpp
// and the README's radiocast_serve section for the frame catalogue and a
// worked example.  SIGINT/SIGTERM stop the daemon cleanly.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "parallel/thread_pool.hpp"
#include "runtime/plan_store.hpp"
#include "runtime/sweep.hpp"
#include "serve/server.hpp"
#include "support/contracts.hpp"

namespace {

radiocast::serve::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();
}

int usage() {
  std::fprintf(
      stderr,
      "usage: radiocast_serve --unix PATH | --tcp PORT\n"
      "                       [--store DIR] [--threads N] "
      "[--cache-bytes BYTES]\n"
      "                       [--pipeline-depth N] "
      "[--coalesce-window-ms M]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace radiocast;

  serve::ServerOptions options;
  bool tcp = false;
  std::string store_dir;
  std::size_t threads = 0;
  std::size_t cache_bytes = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--unix") == 0 && i + 1 < argc) {
      options.unix_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tcp") == 0 && i + 1 < argc) {
      tcp = true;
      options.tcp_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--cache-bytes") == 0 && i + 1 < argc) {
      cache_bytes = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--pipeline-depth") == 0 &&
               i + 1 < argc) {
      options.executor.pipeline_depth =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--coalesce-window-ms") == 0 &&
               i + 1 < argc) {
      options.executor.coalesce_window_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
      return usage();
    }
  }
  if (options.unix_path.empty() && !tcp) return usage();

  try {
    par::ThreadPool pool(threads);
    runtime::SweepRunner runner(pool);
    if (cache_bytes != 0) runner.cache().set_byte_budget(cache_bytes);
    std::optional<runtime::PlanStore> store;
    if (!store_dir.empty()) {
      store.emplace(store_dir);
      runner.attach_store(&*store);
      std::printf("plan store %s (%zu records)\n",
                  store->directory().c_str(), store->entry_count());
    }

    serve::Server server(runner, options);
    server.start();
    g_server = &server;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    if (!options.unix_path.empty()) {
      std::printf("listening unix %s\n", options.unix_path.c_str());
    } else {
      std::printf("listening tcp %u\n", server.tcp_port());
    }
    std::fflush(stdout);

    server.wait();
    g_server = nullptr;

    const auto stats = server.stats();
    std::printf("served %llu batches / %llu specs over %llu connections\n",
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.specs_run),
                static_cast<unsigned long long>(stats.connections));
    const auto pipeline = server.pipeline_stats();
    if (pipeline.submissions != 0) {
      std::printf(
          "pipeline: %llu submissions, %llu coalesced batches, "
          "%llu merged specs\n",
          static_cast<unsigned long long>(pipeline.submissions),
          static_cast<unsigned long long>(pipeline.coalesced_batches),
          static_cast<unsigned long long>(pipeline.merged_specs));
    }
    return 0;
  } catch (const ContractViolation& violation) {
    std::fprintf(stderr, "radiocast_serve: %s\n", violation.what());
    return 1;
  }
}
