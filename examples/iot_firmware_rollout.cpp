// IoT firmware rollout — the paper's §1.2 motivating scenario.
//
// A central monitor knows the placement of already-deployed radio devices in
// a business campus (clustered unit-disk-ish topology).  It assigns each
// device a 3-bit role (the λ_ack label).  A gateway then pushes a firmware
// image chunk by chunk with *acknowledged* broadcast: chunk k+1 is sent only
// after the "ack" for chunk k has arrived, so the tiny devices never need to
// buffer more than one chunk.
#include <cstdio>
#include <vector>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "core/multi.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

int main() {
  using namespace radiocast;

  Rng rng(77);
  const graph::Graph campus = graph::clustered(/*clusters=*/6, /*size=*/8,
                                               /*p_intra=*/0.5, rng);
  const graph::NodeId gateway = 0;
  std::printf("campus network: %s, gateway %u\n", campus.summary().c_str(),
              gateway);

  // One centralized labeling serves every chunk (the scheme is per-graph, not
  // per-message) — this is exactly why short reusable labels matter.
  const core::Labeling roles = core::label_acknowledged(campus, gateway);
  std::vector<std::uint32_t> role_count(8, 0);
  for (const auto& l : roles.labels) ++role_count[l.value()];
  std::printf("role census (3-bit roles): ");
  for (std::uint8_t v = 0; v < 8; ++v) {
    if (role_count[v]) {
      const core::Label l{(v & 4) != 0, (v & 2) != 0, (v & 1) != 0};
      std::printf("%s x%u  ", l.to_string(3).c_str(), role_count[v]);
    }
  }
  std::printf("\n");

  // One continuous radio session: the gateway releases chunk k+1 only after
  // the acknowledgement for chunk k has walked back to it (paper §1.2).
  const std::vector<std::uint32_t> firmware = {0xCAFE, 0xBEEF, 0xF00D, 0x1CEE};
  const auto session = core::run_multi_broadcast(campus, gateway, firmware);
  if (!session.ok) {
    std::printf("rollout FAILED\n");
    return 1;
  }
  for (std::size_t chunk = 0; chunk < firmware.size(); ++chunk) {
    std::printf("chunk %zu (0x%04X): acknowledged at round %llu\n", chunk,
                firmware[chunk],
                static_cast<unsigned long long>(session.ack_rounds[chunk]));
  }
  std::printf("firmware rollout complete: %zu chunks in %llu radio rounds "
              "(%llu rounds per chunk, pipeline is perfectly periodic)\n",
              firmware.size(),
              static_cast<unsigned long long>(session.total_rounds),
              static_cast<unsigned long long>(session.rounds_per_message));
  return 0;
}
