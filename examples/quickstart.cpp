// Quickstart: label a small radio network with the 2-bit scheme λ and run the
// universal broadcast algorithm B, printing the round-by-round execution.
//
//   $ ./quickstart
//
// This is the paper's Figure 1 pipeline on a random unit-disk network: the
// centralized labeler sees the topology; the per-node protocols see only
// their 2-bit label and what they hear.
#include <cstdio>

#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

int main() {
  using namespace radiocast;

  // 1. A 20-node unit-disk radio network (the classical radio geometry).
  Rng rng(2019);
  const graph::Graph g = graph::random_geometric(20, 0.35, rng);
  const graph::NodeId source = 0;
  std::printf("network: %s, source %u\n", g.summary().c_str(), source);

  // 2. Centralized 2-bit labeling (knows the whole graph).
  const core::Labeling labeling = core::label_broadcast(g, source);
  std::printf("labels  : ");
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::printf("%u:%s ", v, labeling.labels[v].to_string().c_str());
  }
  std::printf("\n");

  // 3. Universal algorithm B — every node runs the same code on (label, ears).
  sim::Engine engine(g, core::make_broadcast_protocols(labeling, /*mu=*/7),
                     {sim::TraceLevel::kFull});
  engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                   4 * g.node_count());

  // 4. Print the execution and check it against the paper's Lemma 2.8.
  const auto& trace = engine.trace();
  for (std::size_t t = 0; t < trace.rounds().size(); ++t) {
    const auto& rec = trace.rounds()[t];
    if (rec.transmissions.empty()) continue;
    std::printf("round %2zu: tx {", t + 1);
    for (const auto& [v, msg] : rec.transmissions) {
      std::printf(" %u:%s", v, sim::to_string(msg.kind));
    }
    std::printf(" } -> %zu deliveries\n", rec.deliveries.size());
  }
  std::printf("all informed after round %llu (bound 2n-3 = %u)\n",
              static_cast<unsigned long long>(
                  engine.last_first_data_reception()),
              2 * g.node_count() - 3);

  const std::string verdict = core::verify_lemma_2_8(g, labeling, trace);
  std::printf("Lemma 2.8 check: %s\n",
              verdict.empty() ? "OK" : verdict.c_str());
  return verdict.empty() && engine.all_informed() ? 0 : 1;
}
