// radiocast_cli — command-line front end for the library.
//
//   radiocast_cli gen <family> [args...]          emit an edge list
//   radiocast_cli label  [--source N] [--scheme b|ack|arb] < edges
//   radiocast_cli run    [--source N] [--scheme b|ack|arb|onebit] < edges
//   radiocast_cli verify [--source N] < edges     run B + Lemma 2.8 check
//   radiocast_cli dot    [--source N] < edges     Graphviz with labels
//
// Families for `gen`: path N | cycle N | star N | complete N | grid R C |
// torus R C | hypercube D | tree N SEED | gnp N P SEED | disk N R SEED |
// sp M SEED | wheel N | petersen
//
// Examples:
//   radiocast_cli gen grid 4 6 | radiocast_cli run --scheme ack
//   radiocast_cli gen gnp 30 0.15 7 | radiocast_cli verify
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/traversal.hpp"
#include "onebit/runner.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace radiocast;

int usage() {
  std::fprintf(stderr,
               "usage: radiocast_cli gen <family> [args...]\n"
               "       radiocast_cli {label|run|verify|dot} [--source N] "
               "[--scheme b|ack|arb|onebit]\n"
               "                     [--backend "
               "auto|scalar|bit|sharded|compiled]\n"
               "                     [--dispatch auto|scan|active] "
               "[--threads N] < edge-list\n"
               "       (--backend compiled replays the label-determined "
               "schedule; run --scheme b|ack|arb;\n"
               "        --dispatch picks the protocol-dispatch strategy "
               "[auto = active-set when hinted];\n"
               "        --threads sets the sharded worker count, "
               "0 = hardware)\n");
  return 2;
}

struct Options {
  graph::NodeId source = 0;
  std::string scheme = "b";
  std::string backend = "auto";
  std::string dispatch = "auto";
  std::size_t threads = 0;
  bool ok = true;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--source") == 0 && i + 1 < argc) {
      opt.source = static_cast<graph::NodeId>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      opt.scheme = argv[++i];
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      opt.backend = argv[++i];
    } else if (std::strcmp(argv[i], "--dispatch") == 0 && i + 1 < argc) {
      opt.dispatch = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const char* value = argv[++i];
      const unsigned long long t = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0' || value[0] == '-' || t > 4096) {
        std::fprintf(stderr, "--threads must be an integer in [0, 4096]\n");
        opt.ok = false;
        return opt;
      }
      opt.threads = static_cast<std::size_t>(t);
    }
  }
  if (opt.backend != "compiled" && !sim::parse_backend(opt.backend)) {
    std::fprintf(stderr, "unknown backend '%s'\n", opt.backend.c_str());
    opt.ok = false;
  }
  if (!sim::parse_dispatch(opt.dispatch)) {
    std::fprintf(stderr, "unknown dispatch '%s'\n", opt.dispatch.c_str());
    opt.ok = false;
  }
  return opt;
}

/// The engine backend for a parsed options block ("compiled" handled by the
/// caller; any other value was validated in parse_options).
sim::BackendKind engine_backend(const Options& opt) {
  const auto parsed = sim::parse_backend(opt.backend);
  return parsed ? *parsed : sim::BackendKind::kAuto;
}

/// The dispatch strategy for a parsed options block (validated above).
sim::DispatchKind engine_dispatch(const Options& opt) {
  const auto parsed = sim::parse_dispatch(opt.dispatch);
  return parsed ? *parsed : sim::DispatchKind::kAuto;
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string family = argv[2];
  auto arg = [&](int k, std::uint32_t fallback) {
    return argc > 2 + k ? static_cast<std::uint32_t>(std::stoul(argv[2 + k]))
                        : fallback;
  };
  graph::Graph g;
  if (family == "path") {
    g = graph::path(arg(1, 10));
  } else if (family == "cycle") {
    g = graph::cycle(arg(1, 10));
  } else if (family == "star") {
    g = graph::star(arg(1, 10));
  } else if (family == "complete") {
    g = graph::complete(arg(1, 8));
  } else if (family == "grid") {
    g = graph::grid(arg(1, 4), arg(2, 4));
  } else if (family == "torus") {
    g = graph::torus(arg(1, 4), arg(2, 4));
  } else if (family == "hypercube") {
    g = graph::hypercube(arg(1, 4));
  } else if (family == "wheel") {
    g = graph::wheel(arg(1, 8));
  } else if (family == "petersen") {
    g = graph::petersen();
  } else if (family == "tree") {
    Rng rng(arg(2, 1));
    g = graph::random_tree(arg(1, 16), rng);
  } else if (family == "gnp") {
    const double p = argc > 4 ? std::stod(argv[4]) : 0.2;
    Rng rng(argc > 5 ? std::stoull(argv[5]) : 1);
    g = graph::gnp_connected(arg(1, 20), p, rng);
  } else if (family == "disk") {
    const double r = argc > 4 ? std::stod(argv[4]) : 0.3;
    Rng rng(argc > 5 ? std::stoull(argv[5]) : 1);
    g = graph::random_geometric(arg(1, 20), r, rng);
  } else if (family == "sp") {
    Rng rng(arg(2, 1));
    g = graph::series_parallel(arg(1, 20), rng);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  graph::write_edge_list(g, std::cout);
  return 0;
}

int cmd_label(const graph::Graph& g, const Options& opt) {
  if (opt.scheme == "b") {
    const auto lab = core::label_broadcast(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(2).c_str());
    }
  } else if (opt.scheme == "ack") {
    const auto lab = core::label_acknowledged(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(3).c_str());
    }
  } else if (opt.scheme == "arb") {
    const auto lab = core::label_arbitrary(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(3).c_str());
    }
  } else if (opt.scheme == "onebit") {
    const auto lab = onebit::find_onebit_labeling(g, opt.source);
    if (!lab.ok) {
      std::fprintf(stderr, "no one-bit labeling found\n");
      return 1;
    }
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %d\n", v, lab.bits[v] ? 1 : 0);
    }
  } else {
    return usage();
  }
  return 0;
}

int cmd_run(const graph::Graph& g, const Options& opt) {
  if (opt.backend == "compiled" && opt.scheme == "onebit") {
    std::fprintf(stderr,
                 "--backend compiled requires --scheme b, ack, or arb (the "
                 "compiled schedules replay the label-determined "
                 "algorithms)\n");
    return 2;
  }
  core::RunOptions run_opt;
  run_opt.backend = engine_backend(opt);
  run_opt.threads = opt.threads;
  run_opt.dispatch = engine_dispatch(opt);
  if (opt.scheme == "b") {
    const auto run = opt.backend == "compiled"
                         ? core::run_broadcast_compiled(g, opt.source, run_opt)
                         : core::run_broadcast(g, opt.source, run_opt);
    std::printf("scheme=lambda(2-bit) backend=%s n=%u informed=%s rounds=%llu "
                "bound=%llu ell=%u\n",
                opt.backend.c_str(), g.node_count(),
                run.all_informed ? "all" : "NOT-ALL",
                static_cast<unsigned long long>(run.completion_round),
                static_cast<unsigned long long>(run.bound), run.ell);
    return run.all_informed ? 0 : 1;
  }
  if (opt.scheme == "ack") {
    const auto run =
        opt.backend == "compiled"
            ? core::run_acknowledged_compiled(g, opt.source, run_opt)
            : core::run_acknowledged(g, opt.source, run_opt);
    std::printf("scheme=lambda_ack(3-bit) informed=%s t=%llu t'=%llu z=%u\n",
                run.all_informed ? "all" : "NOT-ALL",
                static_cast<unsigned long long>(run.completion_round),
                static_cast<unsigned long long>(run.ack_round), run.z);
    return run.all_informed && run.ack_round != 0 ? 0 : 1;
  }
  if (opt.scheme == "arb") {
    const auto run = opt.backend == "compiled"
                         ? core::run_arb_compiled(g, opt.source, 0, run_opt)
                         : core::run_arbitrary(g, opt.source, 0, run_opt);
    std::printf("scheme=lambda_arb(3-bit) ok=%s total_rounds=%llu "
                "common_done=%llu T=%llu\n",
                run.ok ? "yes" : "NO",
                static_cast<unsigned long long>(run.total_rounds),
                static_cast<unsigned long long>(run.done_round),
                static_cast<unsigned long long>(run.T));
    return run.ok ? 0 : 1;
  }
  if (opt.scheme == "onebit") {
    const auto run =
        onebit::run_onebit(g, opt.source,
                           {.engine_backend = run_opt.backend,
                            .engine_threads = opt.threads,
                            .engine_dispatch = run_opt.dispatch});
    std::printf("scheme=onebit ok=%s rounds=%llu ones=%u attempts=%u\n",
                run.ok ? "yes" : "NO",
                static_cast<unsigned long long>(run.completion_round),
                run.ones, run.attempts);
    return run.ok ? 0 : 1;
  }
  return usage();
}

int cmd_verify(const graph::Graph& g, const Options& opt) {
  const auto labeling = core::label_broadcast(g, opt.source);
  sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                     {sim::TraceLevel::kFull, false, engine_backend(opt),
                      opt.threads, engine_dispatch(opt)});
  engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                   4ull * g.node_count() + 8);
  const auto verdict = core::verify_lemma_2_8(g, labeling, engine.trace());
  std::printf("informed=%s completion=%llu lemma2.8=%s\n",
              engine.all_informed() ? "all" : "NOT-ALL",
              static_cast<unsigned long long>(
                  engine.last_first_data_reception()),
              verdict.empty() ? "OK" : verdict.c_str());
  return engine.all_informed() && verdict.empty() ? 0 : 1;
}

int cmd_dot(const graph::Graph& g, const Options& opt) {
  const auto lab = core::label_broadcast(g, opt.source);
  std::vector<std::string> text(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    text[v] = lab.labels[v].to_string(2);
  }
  std::printf("%s", graph::to_dot(g, text, opt.source).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);

  const Options opt = parse_options(argc, argv, 2);
  if (!opt.ok) return 2;
  graph::Graph g = graph::read_edge_list(std::cin);
  if (g.node_count() == 0) {
    std::fprintf(stderr, "empty graph on stdin\n");
    return 2;
  }
  if (!graph::is_connected(g)) {
    std::fprintf(stderr, "input graph is not connected\n");
    return 2;
  }
  if (opt.source >= g.node_count()) {
    std::fprintf(stderr, "source out of range\n");
    return 2;
  }

  if (opt.backend == "compiled" && cmd != "run") {
    std::fprintf(stderr, "--backend compiled only applies to 'run'\n");
    return 2;
  }
  if (cmd == "label") return cmd_label(g, opt);
  if (cmd == "run") return cmd_run(g, opt);
  if (cmd == "verify") return cmd_verify(g, opt);
  if (cmd == "dot") return cmd_dot(g, opt);
  return usage();
}
