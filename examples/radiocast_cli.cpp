// radiocast_cli — command-line front end for the library.
//
//   radiocast_cli gen <family> [args...]          emit an edge list
//   radiocast_cli label  [--source N] [--scheme b|ack|arb] < edges
//   radiocast_cli run    [--source N] [--scheme b|ack|arb|onebit] < edges
//   radiocast_cli verify [--source N] < edges     run B + Lemma 2.8 check
//   radiocast_cli dot    [--source N] < edges     Graphviz with labels
//   radiocast_cli sweep  [--suite standard|quick] [--n N] [--schemes ...]
//                        [--repeat K]             batched registry sweep
//
// Families for `gen`: path N | cycle N | star N | complete N | grid R C |
// torus R C | hypercube D | tree N SEED | gnp N P SEED | disk N R SEED |
// sp M SEED | wheel N | petersen
//
// Examples:
//   radiocast_cli gen grid 4 6 | radiocast_cli run --scheme ack
//   radiocast_cli gen gnp 30 0.15 7 | radiocast_cli verify
//   radiocast_cli sweep --suite quick --n 32 --schemes b,ack,arb --repeat 2
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "analysis/experiments.hpp"
#include "core/runner.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/traversal.hpp"
#include "onebit/runner.hpp"
#include "runtime/flags.hpp"
#include "runtime/scheme.hpp"
#include "runtime/sweep.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace radiocast;

int usage() {
  std::fprintf(stderr,
               "usage: radiocast_cli gen <family> [args...]\n"
               "       radiocast_cli {label|run|verify|dot} [--source N] "
               "[--scheme b|ack|arb|onebit]\n"
               "                     [--backend "
               "auto|scalar|bit|sharded|compiled]\n"
               "                     [--dispatch auto|scan|active] "
               "[--threads N] < edge-list\n"
               "       radiocast_cli sweep [--suite standard|quick] [--n N] "
               "[--seed S]\n"
               "                     [--schemes LIST|all] [--repeat K] "
               "[--backend ...] [--dispatch ...]\n"
               "                     [--threads N] [--store DIR] "
               "[--store-gc-bytes B] [--faults ...]\n"
               "       (--backend compiled replays the label-determined "
               "schedule; run --scheme b|ack|arb;\n"
               "        --dispatch picks the protocol-dispatch strategy "
               "[auto = active-set when hinted];\n"
               "        --threads sets the sharded/sweep worker count, "
               "0 = hardware;\n"
               "        --faults injects deterministic faults "
               "(run/sweep, engine path only):\n"
               "          %s\n"
               "        --resilient (run --scheme ack) turns on B_ack's "
               "loss-tolerant retry mode;\n"
               "        sweep runs every listed registry scheme over a "
               "workload suite with a shared\n"
               "        plan cache — --repeat K reruns the batch to "
               "demonstrate warm-cache hits)\n",
               std::string(runtime::faults_flag_values()).c_str());
  return 2;
}

struct Options {
  graph::NodeId source = 0;
  std::string scheme = "b";
  runtime::ExecutionConfig exec;
  bool resilient = false;
  bool ok = true;
};

Options parse_options(int argc, char** argv, int first) {
  Options opt;
  for (int i = first; i < argc; ++i) {
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    const auto shared = runtime::parse_execution_flag(
        argv[i], value, /*allow_compiled=*/true, opt.exec);
    if (shared.status == runtime::FlagStatus::kOk) {
      ++i;
      continue;
    }
    if (shared.status == runtime::FlagStatus::kError) {
      std::fprintf(stderr, "%s\n", shared.error.c_str());
      opt.ok = false;
      return opt;
    }
    if (std::strcmp(argv[i], "--source") == 0 && i + 1 < argc) {
      opt.source = static_cast<graph::NodeId>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--scheme") == 0 && i + 1 < argc) {
      opt.scheme = argv[++i];
    } else if (std::strcmp(argv[i], "--resilient") == 0) {
      opt.resilient = true;
    }
  }
  return opt;
}

/// Display name of the selected backend ("compiled" wins over the engine
/// backend, mirroring how the run commands treat the flag).
const char* backend_display(const Options& opt) {
  return opt.exec.compiled ? "compiled" : sim::to_string(opt.exec.backend);
}

int cmd_gen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string family = argv[2];
  auto arg = [&](int k, std::uint32_t fallback) {
    return argc > 2 + k ? static_cast<std::uint32_t>(std::stoul(argv[2 + k]))
                        : fallback;
  };
  graph::Graph g;
  if (family == "path") {
    g = graph::path(arg(1, 10));
  } else if (family == "cycle") {
    g = graph::cycle(arg(1, 10));
  } else if (family == "star") {
    g = graph::star(arg(1, 10));
  } else if (family == "complete") {
    g = graph::complete(arg(1, 8));
  } else if (family == "grid") {
    g = graph::grid(arg(1, 4), arg(2, 4));
  } else if (family == "torus") {
    g = graph::torus(arg(1, 4), arg(2, 4));
  } else if (family == "hypercube") {
    g = graph::hypercube(arg(1, 4));
  } else if (family == "wheel") {
    g = graph::wheel(arg(1, 8));
  } else if (family == "petersen") {
    g = graph::petersen();
  } else if (family == "tree") {
    Rng rng(arg(2, 1));
    g = graph::random_tree(arg(1, 16), rng);
  } else if (family == "gnp") {
    const double p = argc > 4 ? std::stod(argv[4]) : 0.2;
    Rng rng(argc > 5 ? std::stoull(argv[5]) : 1);
    g = graph::gnp_connected(arg(1, 20), p, rng);
  } else if (family == "disk") {
    const double r = argc > 4 ? std::stod(argv[4]) : 0.3;
    Rng rng(argc > 5 ? std::stoull(argv[5]) : 1);
    g = graph::random_geometric(arg(1, 20), r, rng);
  } else if (family == "sp") {
    Rng rng(arg(2, 1));
    g = graph::series_parallel(arg(1, 20), rng);
  } else {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    return 2;
  }
  graph::write_edge_list(g, std::cout);
  return 0;
}

int cmd_label(const graph::Graph& g, const Options& opt) {
  if (opt.scheme == "b") {
    const auto lab = core::label_broadcast(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(2).c_str());
    }
  } else if (opt.scheme == "ack") {
    const auto lab = core::label_acknowledged(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(3).c_str());
    }
  } else if (opt.scheme == "arb") {
    const auto lab = core::label_arbitrary(g, opt.source);
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %s\n", v, lab.labels[v].to_string(3).c_str());
    }
  } else if (opt.scheme == "onebit") {
    const auto lab = onebit::find_onebit_labeling(g, opt.source);
    if (!lab.ok) {
      std::fprintf(stderr, "no one-bit labeling found\n");
      return 1;
    }
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      std::printf("%u %d\n", v, lab.bits[v] ? 1 : 0);
    }
  } else {
    return usage();
  }
  return 0;
}

int cmd_run(const graph::Graph& g, const Options& opt) {
  if (opt.exec.faults.enabled() || opt.resilient) {
    // Faulted / resilient runs go through the scheme registry: the legacy
    // core::run_* wrappers predate ExecutionConfig's fault plan, and
    // compiled replays model only the fault-free schedule.
    if (opt.exec.compiled) {
      std::fprintf(stderr,
                   "--backend compiled replays the fault-free schedule; "
                   "--faults/--resilient need the engine\n");
      return 2;
    }
    const auto* scheme = runtime::SchemeRegistry::instance().find(opt.scheme);
    if (scheme == nullptr) {
      std::fprintf(stderr, "unknown registry scheme '%s' for a faulted run\n",
                   opt.scheme.c_str());
      return 2;
    }
    runtime::SchemeOptions sopt;
    sopt.resilient = opt.resilient;
    runtime::ExecutionConfig exec = opt.exec;
    if (exec.max_rounds == 0) {
      // Retries stretch past the fault-free theorem bound; give faulted
      // runs a generous linear budget instead of the scheme default.
      exec.max_rounds = 64 * std::max<std::uint64_t>(g.node_count(), 16);
    }
    const auto plan = scheme->label(g, opt.source, sopt);
    const auto run =
        runtime::run_with_plan(*scheme, g, opt.source, plan, sopt, exec);
    const std::string faults = sim::format_fault_plan(opt.exec.faults);
    std::printf("scheme=%s faults=[%s]%s ok=%s informed=%s rounds=%llu "
                "completion=%llu\n",
                opt.scheme.c_str(), faults.c_str(),
                opt.resilient ? " resilient" : "", run.ok ? "yes" : "NO",
                run.all_informed ? "all" : "NOT-ALL",
                static_cast<unsigned long long>(run.rounds),
                static_cast<unsigned long long>(run.completion_round));
    return run.ok ? 0 : 1;
  }
  if (opt.exec.compiled && opt.scheme == "onebit") {
    std::fprintf(stderr,
                 "--backend compiled requires --scheme b, ack, or arb (the "
                 "compiled schedules replay the label-determined "
                 "algorithms)\n");
    return 2;
  }
  core::RunOptions run_opt;
  run_opt.backend = opt.exec.backend;
  run_opt.threads = opt.exec.threads;
  run_opt.dispatch = opt.exec.dispatch;
  if (opt.scheme == "b") {
    const auto run = opt.exec.compiled
                         ? core::run_broadcast_compiled(g, opt.source, run_opt)
                         : core::run_broadcast(g, opt.source, run_opt);
    std::printf("scheme=lambda(2-bit) backend=%s n=%u informed=%s rounds=%llu "
                "bound=%llu ell=%u\n",
                backend_display(opt), g.node_count(),
                run.all_informed ? "all" : "NOT-ALL",
                static_cast<unsigned long long>(run.completion_round),
                static_cast<unsigned long long>(run.bound), run.ell);
    return run.all_informed ? 0 : 1;
  }
  if (opt.scheme == "ack") {
    const auto run =
        opt.exec.compiled
            ? core::run_acknowledged_compiled(g, opt.source, run_opt)
            : core::run_acknowledged(g, opt.source, run_opt);
    std::printf("scheme=lambda_ack(3-bit) informed=%s t=%llu t'=%llu z=%u\n",
                run.all_informed ? "all" : "NOT-ALL",
                static_cast<unsigned long long>(run.completion_round),
                static_cast<unsigned long long>(run.ack_round), run.z);
    return run.all_informed && run.ack_round != 0 ? 0 : 1;
  }
  if (opt.scheme == "arb") {
    const auto run = opt.exec.compiled
                         ? core::run_arb_compiled(g, opt.source, 0, run_opt)
                         : core::run_arbitrary(g, opt.source, 0, run_opt);
    std::printf("scheme=lambda_arb(3-bit) ok=%s total_rounds=%llu "
                "common_done=%llu T=%llu\n",
                run.ok ? "yes" : "NO",
                static_cast<unsigned long long>(run.total_rounds),
                static_cast<unsigned long long>(run.done_round),
                static_cast<unsigned long long>(run.T));
    return run.ok ? 0 : 1;
  }
  if (opt.scheme == "onebit") {
    const auto run =
        onebit::run_onebit(g, opt.source,
                           {.engine_backend = run_opt.backend,
                            .engine_threads = run_opt.threads,
                            .engine_dispatch = run_opt.dispatch});
    std::printf("scheme=onebit ok=%s rounds=%llu ones=%u attempts=%u\n",
                run.ok ? "yes" : "NO",
                static_cast<unsigned long long>(run.completion_round),
                run.ones, run.attempts);
    return run.ok ? 0 : 1;
  }
  return usage();
}

int cmd_verify(const graph::Graph& g, const Options& opt) {
  // The registry's verify hook: run "b" with a full trace and check it
  // against the paper's per-round characterization (Lemma 2.8).
  const auto* scheme = runtime::SchemeRegistry::instance().find("b");
  const auto plan = scheme->label(g, opt.source, {});
  runtime::ExecutionConfig config = opt.exec;
  config.compiled = false;
  config.trace = sim::TraceLevel::kFull;
  const auto run =
      runtime::run_with_plan(*scheme, g, opt.source, plan, {}, config);
  const auto verdict = scheme->verify(g, opt.source, *plan, run.trace);
  std::printf("informed=%s completion=%llu lemma2.8=%s\n",
              run.all_informed ? "all" : "NOT-ALL",
              static_cast<unsigned long long>(run.completion_round),
              verdict.empty() ? "OK" : verdict.c_str());
  return run.all_informed && verdict.empty() ? 0 : 1;
}

/// `radiocast_cli sweep`: a batched registry sweep over a workload suite
/// with a shared plan cache.  One line per (workload × scheme), in spec
/// order — byte-identical at any --threads value.
int cmd_sweep(int argc, char** argv) {
  std::string suite_name = "quick";
  std::uint32_t n = 32;
  std::uint64_t seed = 1;
  int repeat = 1;
  std::string schemes_arg =
      "b,ack,common-round,arb,multi,round-robin,color-robin,decay,beep";
  std::string store_dir;
  std::uint64_t store_gc_bytes = 0;
  bool store_gc = false;
  runtime::ExecutionConfig config;
  for (int i = 2; i < argc; ++i) {
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    const auto shared = runtime::parse_execution_flag(
        argv[i], value, /*allow_compiled=*/true, config);
    if (shared.status == runtime::FlagStatus::kOk) {
      ++i;
      continue;
    }
    if (shared.status == runtime::FlagStatus::kError) {
      std::fprintf(stderr, "%s\n", shared.error.c_str());
      return 2;
    }
    if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite_name = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--schemes") == 0 && i + 1 < argc) {
      schemes_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--store-gc-bytes") == 0 &&
               i + 1 < argc) {
      store_gc_bytes = std::stoull(argv[++i]);
      store_gc = true;
    } else {
      std::fprintf(stderr, "unknown sweep argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (store_gc && store_dir.empty()) {
    std::fprintf(stderr, "--store-gc-bytes needs --store DIR\n");
    return 2;
  }
  if (n < 8) {
    std::fprintf(stderr, "--n must be >= 8 (workload-suite minimum)\n");
    return 2;
  }
  if (repeat < 1) {
    std::fprintf(stderr, "--repeat must be >= 1\n");
    return 2;
  }
  if (suite_name != "standard" && suite_name != "quick") {
    std::fprintf(stderr, "--suite must be standard or quick\n");
    return 2;
  }
  if (config.compiled && config.faults.enabled()) {
    std::fprintf(stderr, "--backend compiled replays the fault-free "
                         "schedule; drop it to sweep with --faults\n");
    return 2;
  }

  auto& registry = runtime::SchemeRegistry::instance();
  std::vector<std::string> schemes;
  if (schemes_arg == "all") {
    for (const auto* s : registry.schemes()) {
      schemes.emplace_back(s->name());
    }
  } else {
    std::string cur;
    for (const char c : schemes_arg + ",") {
      if (c != ',') {
        cur.push_back(c);
        continue;
      }
      if (cur.empty()) continue;
      if (registry.find(cur) == nullptr) {
        std::fprintf(stderr, "unknown scheme '%s'; registered:", cur.c_str());
        for (const auto* s : registry.schemes()) {
          std::fprintf(stderr, " %s", std::string(s->name()).c_str());
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
      schemes.push_back(cur);
      cur.clear();
    }
  }

  const auto suite = suite_name == "standard"
                         ? analysis::standard_suite(n, seed)
                         : analysis::quick_suite(n, seed);
  par::ThreadPool pool(config.threads);
  runtime::SweepRunner runner(pool);
  std::optional<runtime::PlanStore> store;
  if (!store_dir.empty()) {
    store.emplace(store_dir);
    runner.attach_store(&*store);
  }
  const auto specs = analysis::scheme_specs(runner, suite, schemes, config);

  std::vector<runtime::SchemeResult> results;
  Stopwatch watch;
  for (int rep = 0; rep < repeat; ++rep) {
    results = runner.run(specs);
  }
  const double ms = watch.millis();

  bool all_ok = true;
  const auto lines = analysis::format_sweep(specs, results);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    all_ok = all_ok && results[i].ok;
    std::printf("%s\n", lines[i].c_str());
  }
  const auto stats = runner.cache_stats();
  std::printf(
      "sweep: %zu experiments x %d repeat(s) in %.2f ms | plan cache: "
      "%llu hits / %llu misses / %llu store-hits, compiled: %llu hits / "
      "%llu misses / %llu store-hits\n",
      specs.size(), repeat, ms,
      static_cast<unsigned long long>(stats.plan_hits),
      static_cast<unsigned long long>(stats.plan_misses),
      static_cast<unsigned long long>(stats.plan_store_hits),
      static_cast<unsigned long long>(stats.compiled_hits),
      static_cast<unsigned long long>(stats.compiled_misses),
      static_cast<unsigned long long>(stats.compiled_store_hits));
  if (store_gc) {
    // GC after the sweep: the records this run just read (or wrote) are the
    // most recently used, so eviction trims the cold tail first.
    const std::size_t evicted =
        store->compact(static_cast<std::size_t>(store_gc_bytes));
    std::printf("store gc: evicted %zu record(s), %zu left (%zu bytes)\n",
                evicted, store->entry_count(), store->total_bytes());
  }
  return all_ok ? 0 : 1;
}

int cmd_dot(const graph::Graph& g, const Options& opt) {
  const auto lab = core::label_broadcast(g, opt.source);
  std::vector<std::string> text(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    text[v] = lab.labels[v].to_string(2);
  }
  std::printf("%s", graph::to_dot(g, text, opt.source).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);
  if (cmd == "sweep") return cmd_sweep(argc, argv);

  const Options opt = parse_options(argc, argv, 2);
  if (!opt.ok) return 2;
  graph::Graph g = graph::read_edge_list(std::cin);
  if (g.node_count() == 0) {
    std::fprintf(stderr, "empty graph on stdin\n");
    return 2;
  }
  if (!graph::is_connected(g)) {
    std::fprintf(stderr, "input graph is not connected\n");
    return 2;
  }
  if (opt.source >= g.node_count()) {
    std::fprintf(stderr, "source out of range\n");
    return 2;
  }

  if (opt.exec.compiled && cmd != "run") {
    std::fprintf(stderr, "--backend compiled only applies to 'run'\n");
    return 2;
  }
  if ((opt.exec.faults.enabled() || opt.resilient) && cmd != "run") {
    std::fprintf(stderr, "--faults/--resilient only apply to 'run' (and "
                         "'sweep', which parses its own flags)\n");
    return 2;
  }
  if (cmd == "label") return cmd_label(g, opt);
  if (cmd == "run") return cmd_run(g, opt);
  if (cmd == "verify") return cmd_verify(g, opt);
  if (cmd == "dot") return cmd_dot(g, opt);
  return usage();
}
