// Trace visualizer: renders the Figure-1 execution as per-node timelines and
// emits Graphviz DOT for the labeled network.
//
//   $ ./trace_visualizer            # figure-1 graph
//   $ ./trace_visualizer < edges    # any edge list ("u v" per line)
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace radiocast;

  graph::Graph g;
  if (!isatty(STDIN_FILENO)) g = graph::read_edge_list(std::cin);
  if (g.node_count() == 0) {
    g = graph::figure1();
    std::printf("(no stdin edge list; using the paper's Figure 1 network)\n");
  }
  const graph::NodeId source = 0;

  const core::Labeling labeling = core::label_broadcast(g, source);
  sim::Engine engine(g, core::make_broadcast_protocols(labeling, 1),
                     {sim::TraceLevel::kFull});
  engine.run_until([](const sim::Engine& e) { return e.all_informed(); },
                   4 * g.node_count() + 8);
  const auto& trace = engine.trace();

  // Per-node timeline, Figure-1 style: {transmit rounds} (reception rounds).
  std::printf("\n%-5s %-6s %-18s %s\n", "node", "label", "transmits",
              "receives");
  std::vector<std::string> dot_text(g.node_count());
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    std::ostringstream tx, rx;
    tx << "{";
    bool first = true;
    for (const auto t : trace.transmit_rounds(v)) {
      tx << (first ? "" : ",") << t;
      first = false;
    }
    tx << "}";
    rx << "(";
    first = true;
    for (const auto& [t, msg] : trace.deliveries_at(v)) {
      rx << (first ? "" : ",") << t
         << (msg.kind == sim::MsgKind::kStay ? "s" : "");
      first = false;
    }
    rx << ")";
    std::printf("%-5u %-6s %-18s %s\n", v,
                labeling.labels[v].to_string().c_str(), tx.str().c_str(),
                rx.str().c_str());
    dot_text[v] = labeling.labels[v].to_string() + "\\n" + tx.str();
  }
  std::printf("\ncompletion: all informed by round %llu\n\n",
              static_cast<unsigned long long>(
                  engine.last_first_data_reception()));
  std::printf("%s", graph::to_dot(g, dot_text, source).c_str());
  return engine.all_informed() ? 0 : 1;
}
